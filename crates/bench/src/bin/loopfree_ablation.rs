//! Ablation (§4.4/§5): loop-handling strategies for recovery headers —
//! the free Bernoulli re-toss, first-hop-biased flipping, never-revisit
//! (provably no persistent loops), and bounded switches — trading loop
//! frequency against recovery success.
//!
//! ```text
//! cargo run --release -p splice-bench --bin loopfree_ablation
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::prelude::*;
use splice_core::recovery::HeaderStrategy;
use splice_core::slices::SplicingConfig;
use splice_sim::loops::{loop_experiment, LoopConfig};
use splice_sim::output::{render_table, write_text};
use splice_sim::recovery::{recovery_experiment, RecoveryConfig, RecoveryScheme};

fn main() {
    let args = BenchArgs::parse(60);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Ablation — loop-handling strategies, {} topology, k=5, {} trials",
        topo.name, args.trials
    ));

    let strategies: Vec<(&str, HeaderStrategy)> = vec![
        (
            "bernoulli(0.5)",
            HeaderStrategy::Bernoulli { flip_prob: 0.5 },
        ),
        (
            "first-hop-biased(0.8)",
            HeaderStrategy::FirstHopBiased { flip_prob: 0.8 },
        ),
        (
            "no-revisit(0.5)",
            HeaderStrategy::NoRevisit { flip_prob: 0.5 },
        ),
        (
            "bounded-switches(0.5, 2)",
            HeaderStrategy::BoundedSwitches {
                flip_prob: 0.5,
                max_switches: 2,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, strategy) in strategies {
        // Recovery success with this strategy.
        let rec_cfg = RecoveryConfig {
            ks: vec![5],
            ps: vec![0.02, 0.05, 0.08],
            trials: args.trials,
            splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
            scheme: RecoveryScheme::EndSystem(EndSystemRecovery {
                max_trials: 5,
                header_hops: 20,
                strategy,
            }),
            semantics: Default::default(),
            seed: args.seed,
        };
        let rec = recovery_experiment(&g, &topo.latencies(), &rec_cfg);
        let st = &rec.stats[0];

        // Loop frequency with this strategy.
        let loop_cfg = LoopConfig {
            ks: vec![5],
            p: 0.05,
            trials: args.trials,
            splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
            strategy,
            header_hops: 20,
            seed: args.seed,
        };
        let loops = &loop_experiment(&g, &loop_cfg)[0];

        rows.push(vec![
            name.to_string(),
            format!(
                "{:.1}%",
                100.0 * st.recovered as f64 / st.attempts.max(1) as f64
            ),
            format!("{:.2}", st.avg_trials),
            format!("{:.3}", st.avg_latency_stretch),
            format!("{:.4}", loops.two_hop_rate()),
            format!("{:.4}", loops.longer_rate()),
            loops.persistent.to_string(),
        ]);
    }
    let table = render_table(
        &[
            "strategy",
            "recovered",
            "avg trials",
            "lat stretch",
            "2-hop loops/trial",
            ">2-hop/trial",
            "persistent",
        ],
        &rows,
    );
    println!("{table}");
    println!("expectation: no-revisit eliminates persistent loops at a small recovery cost");

    let path = args.artifact(&format!("loopfree_ablation_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
