//! Theorem B.1: the Chebyshev concentration bound on perturbed path
//! lengths, validated empirically on the topology's real shortest paths.
//!
//! ```text
//! cargo run --release -p splice-bench --bin theorem_b1
//! ```

use splice_bench::{banner, BenchArgs};
use splice_sim::output::{render_table, write_text};
use splice_sim::theory::theorem_b1_experiment;

fn main() {
    let args = BenchArgs::parse(20000);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Theorem B.1 — perturbed path-length concentration, {} topology, {} samples per r",
        topo.name, args.trials
    ));

    let rs = [1.2, 1.5, 2.0, 3.0, 5.0, 8.0];
    let mut all_rows = Vec::new();
    for &c in &[0.25, 0.5, 0.75] {
        let rows = theorem_b1_experiment(&g, c, &rs, args.trials, args.seed);
        for row in rows {
            all_rows.push(vec![
                format!("{c}"),
                format!("{}", row.r),
                format!("{:.5}", row.bound),
                format!("{:.5}", row.observed),
                if row.observed <= row.bound {
                    "ok"
                } else {
                    "VIOLATED"
                }
                .to_string(),
            ]);
        }
    }
    let table = render_table(&["c", "r", "bound 1/r^2", "observed", "check"], &all_rows);
    println!("{table}");

    let path = args.artifact(&format!("theorem_b1_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
