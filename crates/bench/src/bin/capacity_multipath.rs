//! §5 extension: multipath capacity. How much of the underlying graph's
//! s–t max-flow can an end host actually drive through the slices'
//! successor graphs, as k grows?
//!
//! ```text
//! cargo run --release -p splice-bench --bin capacity_multipath
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_sim::output::{render_table, write_text};
use splice_traffic::capacity::capacity_ratio_by_k;

fn main() {
    let args = BenchArgs::parse(0);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "§5 — multipath capacity ratio vs k, {} topology",
        topo.name
    ));

    let kmax = 10;
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(kmax, 0.0, 3.0), args.seed);
    let ratios = capacity_ratio_by_k(&splicing, &g);

    let rows: Vec<Vec<String>> = ratios
        .iter()
        .enumerate()
        .map(|(i, r)| vec![(i + 1).to_string(), format!("{:.3}", r)])
        .collect();
    let table = render_table(&["k", "capacity ratio (spliced / full graph)"], &rows);
    println!("{table}");
    println!("claim: the ratio approaches 1 — splicing exposes the graph's multipath capacity");

    let path = args.artifact(&format!("capacity_multipath_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
