//! Figure 3: reliability curves on the Sprint topology with degree-based
//! `Weight(0, 3)` perturbations, k ∈ {1, 2, 3, 4, 5, 10}, plus the
//! best-possible curve of the underlying graph.
//!
//! ```text
//! cargo run --release -p splice-bench --bin fig3_reliability
//! cargo run --release -p splice-bench --bin fig3_reliability -- --topology geant
//! ```

use splice_bench::{banner, BenchArgs, RunManifest};
use splice_sim::output::{render_table, series_to_csv, write_text};
use splice_sim::reliability::{reliability_experiment_instrumented, ReliabilityConfig};
use splice_sim::telemetry::ExperimentTelemetry;
use splice_telemetry::Registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(250);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Figure 3 — reliability, {} ({} nodes / {} links), degree-based Weight(0,3), {} trials",
        topo.name,
        topo.node_count(),
        topo.link_count(),
        args.trials
    ));

    let mut cfg = ReliabilityConfig::figure3(args.trials, args.seed);
    cfg.semantics = args.splice_semantics();
    println!(
        "semantics: {} (use --semantics directed for forwarding-exact accounting)",
        args.semantics
    );
    let registry = Registry::new();
    let telemetry =
        ExperimentTelemetry::register(&registry).with_heartbeat((args.trials / 10).max(1) as u64);
    let mut manifest = RunManifest::start("fig3_reliability", &args);
    let out = reliability_experiment_instrumented(&g, &cfg, Some(&telemetry));
    manifest.phase_done("experiment");

    let mut series = out.curves.clone();
    series.push(out.best_possible.clone());

    // Terminal table: p vs each curve.
    let headers: Vec<String> = std::iter::once("p".to_string())
        .chain(series.iter().map(|s| s.label.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = series[0]
        .points
        .iter()
        .enumerate()
        .map(|(i, &(p, _))| {
            std::iter::once(format!("{p:.3}"))
                .chain(series.iter().map(|s| format!("{:.4}", s.points[i].1)))
                .collect()
        })
        .collect();
    println!("{}", render_table(&header_refs, &rows));

    // Headline check: k=10 vs best possible at p = 0.05.
    let k10 = out.for_k(10).expect("k=10 evaluated");
    let at = |s: &splice_sim::stats::Series| s.y_at(0.05).unwrap_or(f64::NAN);
    println!(
        "At p=0.05: k=1 {:.4} | k=5 {:.4} | k=10 {:.4} | best possible {:.4}",
        at(out.for_k(1).expect("k=1 evaluated")),
        at(out.for_k(5).expect("k=5 evaluated")),
        at(k10),
        at(&out.best_possible),
    );

    let csv = series_to_csv(&series)?;
    let path = args.artifact(&format!(
        "fig3_reliability_{}_{}.csv",
        topo.name, args.semantics
    ));
    write_text(&path, &csv)?;
    println!("wrote {}", path.display());
    let json_path = args.artifact(&format!(
        "fig3_reliability_{}_{}.json",
        topo.name, args.semantics
    ));
    splice_sim::output::write_json(&json_path, &series)?;
    println!("wrote {}", json_path.display());

    manifest.phase_done("artifacts");
    let manifest_path = args.artifact(&format!(
        "fig3_reliability_{}_{}_manifest.json",
        topo.name, args.semantics
    ));
    manifest.write(&manifest_path, &registry)?;
    println!("wrote {}", manifest_path.display());
    Ok(())
}
