//! §5 extension: random perturbations vs engineered backup
//! configurations (MRC, the paper's citation \[11\]). MRC guarantees
//! single-failure recovery by isolating every link in some
//! configuration; splicing gets diversity for free from randomness. Who
//! gives more reliability per slice?
//!
//! ```text
//! cargo run --release -p splice-bench --bin slicing_vs_mrc
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_bench::{banner, BenchArgs};
use splice_core::mrc::{build_mrc, mrc_assignment, protected_fraction};
use splice_core::prelude::*;
use splice_core::slices::SplicingConfig;
use splice_graph::EdgeMask;
use splice_sim::failure::FailureModel;
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(250);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Ablation — random slicing vs MRC configurations, {} topology, {} trials",
        topo.name, args.trials
    ));

    let n = g.node_count();
    let pairs = (n * (n - 1)) as f64;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let nr = NetworkRecovery::default();

    let mut rows = Vec::new();
    for k in [3usize, 5, 8] {
        let protected = protected_fraction(&mrc_assignment(&g, k - 1));
        let mrc = build_mrc(&g, k);

        // Single-failure recovery coverage: fraction of (pair, failed
        // link on the pair's default path) cases deflection delivers.
        let coverage = |sp: &Splicing, rng: &mut StdRng| -> f64 {
            let (mut cases, mut ok) = (0usize, 0usize);
            for e in g.edge_ids() {
                let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
                for t in g.nodes() {
                    for s in g.nodes() {
                        if s == t {
                            continue;
                        }
                        // Does the default path use e?
                        let mut at = s;
                        let mut uses = false;
                        while at != t {
                            let Some((next, pe)) = sp.next_hop(0, at, t) else {
                                break;
                            };
                            if pe == e {
                                uses = true;
                                break;
                            }
                            at = next;
                        }
                        if !uses {
                            continue;
                        }
                        cases += 1;
                        if nr.forward(sp, &mask, s, t, 0, rng).is_delivered() {
                            ok += 1;
                        }
                    }
                }
            }
            ok as f64 / cases.max(1) as f64
        };

        // Multi-failure reliability (union semantics), p = 0.05, common
        // random failures.
        let reliability = |sp: &Splicing| -> f64 {
            let mut total = 0.0;
            for trial in 0..args.trials as u64 {
                let mut r = StdRng::seed_from_u64(args.seed + trial);
                let mask = FailureModel::IidLinks { p: 0.05 }.sample(&g, &mut r);
                total += sp.union_disconnected_pairs(k, &mask) as f64 / pairs;
            }
            total / args.trials as f64
        };

        for (name, sp) in [
            (
                "random degree(0,3)",
                Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), args.seed),
            ),
            ("MRC configs", mrc),
        ] {
            rows.push(vec![
                k.to_string(),
                name.to_string(),
                if name == "MRC configs" {
                    format!("{:.0}%", 100.0 * protected)
                } else {
                    "-".to_string()
                },
                format!("{:.1}%", 100.0 * coverage(&sp, &mut rng)),
                format!("{:.4}", reliability(&sp)),
            ]);
        }
    }
    let table = render_table(
        &[
            "k",
            "construction",
            "links protected",
            "single-failure recovery",
            "disc @ p=.05 (union)",
        ],
        &rows,
    );
    println!("{table}");
    println!("engineered configurations dominate per slice once k is large enough to protect");
    println!("every link — exactly the §5 conjecture that coverage-conscious schemes 'achieve");
    println!("more reliability with fewer slices'. What random perturbation buys instead is");
    println!("zero computation, zero coordination, and per-pair path diversity beyond what");
    println!("failure protection needs (multipath, load spreading).");

    let path = args.artifact(&format!("slicing_vs_mrc_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
