//! # splice-bench
//!
//! The benchmark harness: one binary per figure/table of the paper, plus
//! Criterion micro-benchmarks of the primitives.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Figure 3 (reliability) | `fig3_reliability` |
//! | Figure 4 (end-system recovery) | `fig4_end_system_recovery` |
//! | Figure 5 (network-based recovery) | `fig5_network_recovery` |
//! | Table 1 (summary) | `table1` |
//! | §4.3 stretch/trials numbers | `stretch_stats` |
//! | §4.4 loop frequencies | `loop_stats` |
//! | Theorem A.1 scaling | `scaling_lognslices` |
//! | Theorem B.1 concentration | `theorem_b1` |
//! | §4.2 linear cost vs diversity | `state_vs_diversity` |
//! | §5 TE interaction (extension) | `te_load_balance` |
//! | §5 multipath capacity (extension) | `capacity_multipath` |
//! | §5 interdomain splicing (extension) | `bgp_splicing` |
//! | loop-handling ablation | `loopfree_ablation` |
//! | perturbation ablation | `perturbation_ablation` |
//!
//! Every binary accepts `--trials N` (Monte-Carlo trials; defaults keep a
//! laptop run in seconds), `--seed N`, `--topology sprint|geant|abilene`,
//! and `--out DIR` (default `results/`). Output goes to stdout as a table
//! and to `DIR/<name>.csv` / `<name>.json` for plotting.

pub mod fib_report;
pub mod repair_report;

use splice_telemetry::{JsonArray, JsonObject, Registry};
use splice_topology::{abilene::abilene, geant::geant, sprint::sprint, Topology};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Common command-line options for experiment binaries.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Base topology name.
    pub topology: String,
    /// Output directory for CSV/JSON artifacts.
    pub out: PathBuf,
    /// Spliced-path semantics: "union" (the paper's accounting) or
    /// "directed" (operationally exact forwarding reachability).
    pub semantics: String,
}

impl BenchArgs {
    /// Parse from `std::env::args`, with a per-binary default trial count.
    ///
    /// Exits the process with a usage message on malformed input.
    pub fn parse(default_trials: usize) -> BenchArgs {
        let mut args = BenchArgs {
            trials: default_trials,
            seed: 20080817, // SIGCOMM 2008's opening day
            topology: "sprint".into(),
            out: PathBuf::from("results"),
            semantics: "union".into(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need_value = |i: usize| {
                argv.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[i]);
                    std::process::exit(2);
                })
            };
            match argv[i].as_str() {
                "--trials" => {
                    args.trials = need_value(i).parse().unwrap_or_else(|e| {
                        eprintln!("bad --trials: {e}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--seed" => {
                    args.seed = need_value(i).parse().unwrap_or_else(|e| {
                        eprintln!("bad --seed: {e}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--topology" => {
                    args.topology = need_value(i).clone();
                    i += 2;
                }
                "--out" => {
                    args.out = PathBuf::from(need_value(i));
                    i += 2;
                }
                "--semantics" => {
                    args.semantics = need_value(i).clone();
                    if args.semantics != "union" && args.semantics != "directed" {
                        eprintln!("--semantics must be union or directed");
                        std::process::exit(2);
                    }
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--trials N] [--seed N] [--topology sprint|geant|abilene] [--out DIR] [--semantics union|directed]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other:?} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Resolve the selected base topology.
    pub fn topology(&self) -> Topology {
        load_topology(&self.topology)
    }

    /// Output path for an artifact of this run.
    pub fn artifact(&self, name: &str) -> PathBuf {
        self.out.join(name)
    }

    /// The selected splice-path semantics as the simulator's enum.
    pub fn splice_semantics(&self) -> splice_sim::reliability::SpliceSemantics {
        match self.semantics.as_str() {
            "directed" => splice_sim::reliability::SpliceSemantics::Directed,
            _ => splice_sim::reliability::SpliceSemantics::UnionGraph,
        }
    }
}

/// Load a named built-in topology.
pub fn load_topology(name: &str) -> Topology {
    match name {
        "sprint" => sprint(),
        "geant" => geant(),
        "abilene" => abilene(),
        other => {
            eprintln!("unknown topology {other:?}; expected sprint|geant|abilene");
            std::process::exit(2);
        }
    }
}

/// Print a section header for binary output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// A machine-readable record of one experiment run: what was asked for,
/// how long each phase took, and the final telemetry snapshot. Written
/// next to the run's CSV artifacts so a plot can always be traced back
/// to its exact configuration.
pub struct RunManifest {
    experiment: String,
    args: BenchArgs,
    phases: Vec<(String, f64)>,
    started: Instant,
    phase_start: Instant,
}

impl RunManifest {
    /// Start the run clock for `experiment`.
    pub fn start(experiment: &str, args: &BenchArgs) -> RunManifest {
        let now = Instant::now();
        RunManifest {
            experiment: experiment.to_string(),
            args: args.clone(),
            phases: Vec::new(),
            started: now,
            phase_start: now,
        }
    }

    /// Close the current phase: records the wall time since the previous
    /// mark (or since [`RunManifest::start`]) under `name`.
    pub fn phase_done(&mut self, name: &str) {
        let now = Instant::now();
        self.phases
            .push((name.to_string(), (now - self.phase_start).as_secs_f64()));
        self.phase_start = now;
    }

    /// Render the manifest as one JSON object, embedding the current
    /// snapshot of `registry`.
    pub fn render(&self, registry: &Registry) -> String {
        let mut phases = JsonArray::new();
        for (name, secs) in &self.phases {
            phases = phases.push_raw(
                &JsonObject::new()
                    .field_str("name", name)
                    .field_f64("seconds", *secs)
                    .finish(),
            );
        }
        JsonObject::new()
            .field_str("experiment", &self.experiment)
            .field_str("topology", &self.args.topology)
            .field_u64("trials", self.args.trials as u64)
            .field_u64("seed", self.args.seed)
            .field_str("semantics", &self.args.semantics)
            .field_raw("phases", &phases.finish())
            .field_f64("total_seconds", self.started.elapsed().as_secs_f64())
            .field_raw("metrics", &registry.render_json())
            .finish()
    }

    /// Write the rendered manifest to `path`, creating parent directories.
    pub fn write(&self, path: impl AsRef<Path>, registry: &Registry) -> std::io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = self.render(registry);
        text.push('\n');
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_resolve() {
        assert_eq!(load_topology("sprint").node_count(), 52);
        assert_eq!(load_topology("geant").node_count(), 23);
        assert_eq!(load_topology("abilene").node_count(), 11);
    }

    fn test_args() -> BenchArgs {
        BenchArgs {
            trials: 42,
            seed: 7,
            topology: "abilene".into(),
            out: PathBuf::from("results"),
            semantics: "union".into(),
        }
    }

    #[test]
    fn manifest_records_config_and_phases() {
        let mut m = RunManifest::start("fig3_reliability", &test_args());
        m.phase_done("experiment");
        m.phase_done("artifacts");
        let reg = Registry::new();
        reg.counter("splice_trials_total", "Trials").add(42);
        let json = m.render(&reg);
        assert!(json.contains(r#""experiment":"fig3_reliability""#));
        assert!(json.contains(r#""topology":"abilene""#));
        assert!(json.contains(r#""trials":42"#));
        assert!(json.contains(r#""seed":7"#));
        assert!(json.contains(r#""name":"experiment""#));
        assert!(json.contains(r#""name":"artifacts""#));
        assert!(json.contains(r#""name":"splice_trials_total","labels":{},"value":42"#));
    }

    #[test]
    fn manifest_writes_to_disk() {
        let dir = std::env::temp_dir().join("splice-bench-manifest");
        let path = dir.join("run_manifest.json");
        let m = RunManifest::start("t", &test_args());
        m.write(&path, &Registry::new()).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains(r#""experiment":"t""#));
        assert!(back.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
