//! # splice-bench
//!
//! The benchmark harness: the `splice-lab` binary drives every
//! figure/table of the paper (plus the extensions, ablations, and
//! baselines) through one [`splice_sim::lab`] engine, and Criterion
//! micro-benchmarks cover the primitives.
//!
//! | Paper artifact | `splice-lab run …` |
//! |---|---|
//! | Figure 3 (reliability) | `fig3_reliability` (alias `fig3`) |
//! | Figure 4 (end-system recovery) | `fig4_end_system_recovery` (alias `fig4`) |
//! | Figure 5 (network-based recovery) | `fig5_network_recovery` (alias `fig5`) |
//! | Table 1 (summary) | `table1` |
//! | §4.3 stretch/trials numbers | `stretch_stats` |
//! | §4.4 loop frequencies | `loop_stats` |
//! | Theorem A.1 scaling | `scaling_lognslices` |
//! | Theorem B.1 concentration | `theorem_b1` |
//! | §4.2 linear cost vs diversity | `state_vs_diversity` |
//! | §5 TE interaction (extension) | `te_load_balance`, `te_vs_tuning` |
//! | §5 multipath capacity (extension) | `capacity_multipath` |
//! | §5 interdomain splicing (extension) | `bgp_splicing` |
//! | §5 overlay splicing (extension) | `overlay_splicing` |
//! | §5 slice-construction studies | `slicing_vs_mrc`, `coverage_ablation`, `strategy_sweep` |
//! | §6 convergence studies | `convergence_window`, `routing_dynamics` |
//! | ablations | `loopfree_ablation`, `perturbation_ablation`, `header_encoding_ablation` |
//! | failure-model extensions | `node_failures`, `srlg_failures` |
//! | baselines | `ecmp_baseline`, `explicit_paths_baseline` |
//! | batched-repair throughput | `churn` |
//! | live-daemon churn | `daemon_churn` (alias `daemon`) |
//! | batched-forwarding throughput | `forward_storm` (alias `forward`) |
//!
//! Every experiment accepts the shared flags `--trials N`, `--seed N`,
//! `--topology NAME` (built-ins or generator specs like `rand-24-40-7`),
//! `--out DIR` (default `results/`),
//! `--strategy perturbed-spf|tree|lst|arc`, and
//! `--semantics union|directed`.
//! Output goes to stdout as a table and to `DIR/<name>.csv` / `.txt` /
//! `.json` for plotting, next to a schema-stamped `*_manifest.json`.
//! `splice-lab run-all` journals per-experiment JSONL shards under
//! `DIR/shards/` so `splice-lab resume` can skip completed work.

pub mod churn_report;
pub mod daemon_report;
pub mod experiments;
pub mod fib_report;
pub mod forward_report;
pub mod repair_report;
pub mod strategy_report;

pub use experiments::registry;

use splice_sim::lab::{
    run_all, run_experiment, ArgsError, DeploymentCache, LabArgs, LabError, USAGE_FLAGS,
};
use splice_topology::{Topology, TopologyError};

/// Load a topology by name: the built-ins (`sprint`, `geant`, `abilene`)
/// or any generator spec understood by [`splice_topology::resolve`].
pub fn load_topology(name: &str) -> Result<Topology, TopologyError> {
    splice_topology::resolve(name)
}

/// Print a section header for experiment output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn print_usage(out: &mut dyn std::io::Write) {
    let _ = writeln!(
        out,
        "splice-lab — one engine behind every Path Splicing experiment\n\
         \n\
         usage:\n\
         \x20 splice-lab list                      list the experiment catalogue\n\
         \x20 splice-lab run <experiment> [flags]  run one experiment\n\
         \x20 splice-lab run-all [flags]           run every experiment, journaling shards\n\
         \x20 splice-lab resume [flags]            like run-all, skipping completed shards\n\
         \x20 splice-lab help                      this message\n\
         \n\
         flags: {USAGE_FLAGS}"
    );
}

/// Parse the shared flags, handling `--help` (usage to stdout, exit 0)
/// and malformed input (message to stderr, exit 2) uniformly.
fn parse_flags(argv: &[String]) -> Result<LabArgs, i32> {
    match LabArgs::parse(argv) {
        Ok(args) => Ok(args),
        Err(ArgsError::Help) => {
            print_usage(&mut std::io::stdout());
            Err(0)
        }
        Err(e) => {
            eprintln!("splice-lab: {e}");
            Err(2)
        }
    }
}

/// The `splice-lab` entry point, factored out of the binary so the exit
/// path stays testable: returns the process exit code instead of calling
/// `std::process::exit` itself.
pub fn lab_main(argv: &[String]) -> i32 {
    let registry = experiments::registry();
    let Some(cmd) = argv.first() else {
        print_usage(&mut std::io::stderr());
        return 2;
    };
    match cmd.as_str() {
        "list" => {
            println!("experiments ({}):", registry.len());
            for exp in registry.iter() {
                let aliases = if exp.aliases().is_empty() {
                    String::new()
                } else {
                    format!(" (alias: {})", exp.aliases().join(", "))
                };
                println!("  {:<26} {}{}", exp.name(), exp.describe(), aliases);
            }
            0
        }
        "run" => {
            let Some(name) = argv.get(1) else {
                eprintln!("usage: splice-lab run <experiment> {USAGE_FLAGS}");
                return 2;
            };
            let Some(exp) = registry.find(name) else {
                eprintln!(
                    "splice-lab: {}",
                    LabError::UnknownExperiment { name: name.clone() }
                );
                return 2;
            };
            let args = match parse_flags(&argv[2..]) {
                Ok(args) => args,
                Err(code) => return code,
            };
            let cache = DeploymentCache::new();
            match run_experiment(exp, &args, &cache) {
                Ok(_) => 0,
                Err(e) => {
                    eprintln!("splice-lab: {e}");
                    1
                }
            }
        }
        "run-all" | "resume" => {
            let resume = cmd == "resume";
            let args = match parse_flags(&argv[1..]) {
                Ok(args) => args,
                Err(code) => return code,
            };
            match run_all(&registry, &args, resume) {
                Ok(_) => 0,
                Err(e) => {
                    eprintln!("splice-lab: {e}");
                    1
                }
            }
        }
        "help" | "--help" | "-h" => {
            print_usage(&mut std::io::stdout());
            0
        }
        other => {
            eprintln!("splice-lab: unknown command {other:?} (try `splice-lab help`)");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_resolve() {
        assert_eq!(load_topology("sprint").unwrap().node_count(), 52);
        assert_eq!(load_topology("geant").unwrap().node_count(), 23);
        assert_eq!(load_topology("abilene").unwrap().node_count(), 11);
        assert_eq!(load_topology("rand-24-40-7").unwrap().node_count(), 24);
    }

    #[test]
    fn unknown_topology_is_a_typed_error() {
        assert!(load_topology("atlantis").is_err());
    }

    #[test]
    fn lab_main_rejects_unknowns_without_exiting() {
        let argv = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(lab_main(&argv(&["frobnicate"])), 2);
        assert_eq!(lab_main(&argv(&["run"])), 2);
        assert_eq!(lab_main(&argv(&["run", "no_such_experiment"])), 2);
        assert_eq!(lab_main(&argv(&["run", "fig3", "--bogus"])), 2);
        assert_eq!(lab_main(&argv(&["help"])), 0);
        assert_eq!(lab_main(&argv(&["list"])), 0);
    }
}
