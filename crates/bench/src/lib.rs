//! # splice-bench
//!
//! The benchmark harness: one binary per figure/table of the paper, plus
//! Criterion micro-benchmarks of the primitives.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Figure 3 (reliability) | `fig3_reliability` |
//! | Figure 4 (end-system recovery) | `fig4_end_system_recovery` |
//! | Figure 5 (network-based recovery) | `fig5_network_recovery` |
//! | Table 1 (summary) | `table1` |
//! | §4.3 stretch/trials numbers | `stretch_stats` |
//! | §4.4 loop frequencies | `loop_stats` |
//! | Theorem A.1 scaling | `scaling_lognslices` |
//! | Theorem B.1 concentration | `theorem_b1` |
//! | §4.2 linear cost vs diversity | `state_vs_diversity` |
//! | §5 TE interaction (extension) | `te_load_balance` |
//! | §5 multipath capacity (extension) | `capacity_multipath` |
//! | §5 interdomain splicing (extension) | `bgp_splicing` |
//! | loop-handling ablation | `loopfree_ablation` |
//! | perturbation ablation | `perturbation_ablation` |
//!
//! Every binary accepts `--trials N` (Monte-Carlo trials; defaults keep a
//! laptop run in seconds), `--seed N`, `--topology sprint|geant|abilene`,
//! and `--out DIR` (default `results/`). Output goes to stdout as a table
//! and to `DIR/<name>.csv` / `<name>.json` for plotting.

use splice_topology::{abilene::abilene, geant::geant, sprint::sprint, Topology};
use std::path::PathBuf;

/// Common command-line options for experiment binaries.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Base topology name.
    pub topology: String,
    /// Output directory for CSV/JSON artifacts.
    pub out: PathBuf,
    /// Spliced-path semantics: "union" (the paper's accounting) or
    /// "directed" (operationally exact forwarding reachability).
    pub semantics: String,
}

impl BenchArgs {
    /// Parse from `std::env::args`, with a per-binary default trial count.
    ///
    /// Exits the process with a usage message on malformed input.
    pub fn parse(default_trials: usize) -> BenchArgs {
        let mut args = BenchArgs {
            trials: default_trials,
            seed: 20080817, // SIGCOMM 2008's opening day
            topology: "sprint".into(),
            out: PathBuf::from("results"),
            semantics: "union".into(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need_value = |i: usize| {
                argv.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[i]);
                    std::process::exit(2);
                })
            };
            match argv[i].as_str() {
                "--trials" => {
                    args.trials = need_value(i).parse().unwrap_or_else(|e| {
                        eprintln!("bad --trials: {e}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--seed" => {
                    args.seed = need_value(i).parse().unwrap_or_else(|e| {
                        eprintln!("bad --seed: {e}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--topology" => {
                    args.topology = need_value(i).clone();
                    i += 2;
                }
                "--out" => {
                    args.out = PathBuf::from(need_value(i));
                    i += 2;
                }
                "--semantics" => {
                    args.semantics = need_value(i).clone();
                    if args.semantics != "union" && args.semantics != "directed" {
                        eprintln!("--semantics must be union or directed");
                        std::process::exit(2);
                    }
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--trials N] [--seed N] [--topology sprint|geant|abilene] [--out DIR] [--semantics union|directed]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other:?} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Resolve the selected base topology.
    pub fn topology(&self) -> Topology {
        load_topology(&self.topology)
    }

    /// Output path for an artifact of this run.
    pub fn artifact(&self, name: &str) -> PathBuf {
        self.out.join(name)
    }

    /// The selected splice-path semantics as the simulator's enum.
    pub fn splice_semantics(&self) -> splice_sim::reliability::SpliceSemantics {
        match self.semantics.as_str() {
            "directed" => splice_sim::reliability::SpliceSemantics::Directed,
            _ => splice_sim::reliability::SpliceSemantics::UnionGraph,
        }
    }
}

/// Load a named built-in topology.
pub fn load_topology(name: &str) -> Topology {
    match name {
        "sprint" => sprint(),
        "geant" => geant(),
        "abilene" => abilene(),
        other => {
            eprintln!("unknown topology {other:?}; expected sprint|geant|abilene");
            std::process::exit(2);
        }
    }
}

/// Print a section header for binary output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_resolve() {
        assert_eq!(load_topology("sprint").node_count(), 52);
        assert_eq!(load_topology("geant").node_count(), 23);
        assert_eq!(load_topology("abilene").node_count(), 11);
    }
}
