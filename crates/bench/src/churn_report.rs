//! Sustained-churn repair throughput, written to `BENCH_churn.json`.
//!
//! The spf-repair report times isolated single-link events from a clean
//! deployment. This module answers the operational question instead: when
//! failures, reweights, and recoveries arrive as a continuous stream, how
//! many updates per second does the control plane absorb, and what does
//! batching buy? It replays one deterministic
//! [`churn_schedule`](splice_testkit::churn_schedule) through
//! [`Splicing::repair_batch`] at several batch sizes and reports sustained
//! throughput, per-batch latency quantiles, and a FIB checksum. Because
//! `repair_batch` is bit-identical to folding its events one at a time,
//! every batch size must land on the same checksum — the report asserts
//! it, so a batching bug cannot ship inside a performance number.

use splice_core::slices::{Splicing, SplicingConfig};
use splice_sim::lab::LabError;
use splice_telemetry::{Histogram, JsonArray, JsonObject};
use splice_testkit::{churn_schedule, schedule_to_batches, BatchStep};
use splice_topology::TopologyError;
use std::path::Path;
use std::time::Instant;

use crate::load_topology;

/// Measured numbers for one batch size.
#[derive(Clone, Debug)]
pub struct ChurnBenchEntry {
    /// Maximum repair events coalesced into one `repair_batch` call.
    pub batch_size: usize,
    /// Timed `repair_batch` calls (rebuild steps are not counted).
    pub batches: usize,
    /// Repair events applied across the timed batches.
    pub events_applied: usize,
    /// Untimed rebuild-from-base steps (link recoveries).
    pub rebuilds: usize,
    /// `events_applied` / total repair wall time — the headline number.
    pub updates_per_sec: f64,
    /// Median per-batch repair time (log2-bucket interpolated).
    pub repair_seconds_p50: f64,
    /// Tail per-batch repair time (p99, clamped to the tracked max).
    pub repair_seconds_p99: f64,
    /// Worst per-batch repair time.
    pub repair_seconds_max: f64,
    /// FIB columns rewritten across the timed batches.
    pub patched_columns: usize,
    /// `patched_columns` / total repair wall time.
    pub patched_columns_per_sec: f64,
    /// FNV-1a digest of the final deployment (next hops + failed edges).
    /// Identical across batch sizes, or the batching is broken.
    pub fib_checksum: u64,
    /// `updates_per_sec` relative to the batch-size-1 entry (1.0 if the
    /// sweep does not include batch size 1).
    pub speedup_vs_batch1: f64,
}

/// FNV-1a digest over the deployment's forwarding state: every
/// `(slice, node, dst)` next hop plus the failed-edge set. Two
/// deployments with equal checksums forward identically.
///
/// This is the canonical [`splice_core::control::fib_checksum`] — the
/// same digest the live daemon's exit oracle and the testkit's
/// daemon-replay differential use — re-exported so existing
/// `BENCH_churn.json` consumers keep their import path.
pub use splice_core::control::fib_checksum;

/// Replay `schedule_len` churn events on `topology` with `k` slices at
/// each batch size, timing only the `repair_batch` calls.
pub fn measure(
    topology: &str,
    k: usize,
    schedule_len: usize,
    batch_sizes: &[usize],
    seed: u64,
) -> Result<Vec<ChurnBenchEntry>, TopologyError> {
    let topo = load_topology(topology)?;
    let g = topo.graph();
    let base = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
    let base_weights: Vec<Vec<f64>> = (0..k).map(|s| base.weights(s).to_vec()).collect();
    let schedule = churn_schedule(&g, k, schedule_len, seed);

    let mut entries: Vec<ChurnBenchEntry> = batch_sizes
        .iter()
        .map(|&batch_size| {
            let steps = schedule_to_batches(&g, &base_weights, &schedule, batch_size);
            let hist = Histogram::with_scale(1e-9);
            let mut repair_total = 0.0f64;
            let mut batches = 0usize;
            let mut events_applied = 0usize;
            let mut rebuilds = 0usize;
            let mut patched = 0usize;
            let mut sp = base.clone();
            for step in &steps {
                match step {
                    BatchStep::Repair(events) => {
                        let t0 = Instant::now();
                        let (next, stats) = sp.repair_batch_report(&g, events);
                        let elapsed = t0.elapsed();
                        sp = next;
                        repair_total += elapsed.as_secs_f64();
                        hist.record_duration(elapsed);
                        batches += 1;
                        events_applied += events.len();
                        patched += stats.patched_columns;
                    }
                    BatchStep::Rebuild { carry } => {
                        sp = base.repair_batch(&g, carry);
                        rebuilds += 1;
                    }
                }
            }
            let secs = repair_total.max(1e-12);
            let (p50, _, p99) = hist.quantiles();
            ChurnBenchEntry {
                batch_size,
                batches,
                events_applied,
                rebuilds,
                updates_per_sec: events_applied as f64 / secs,
                repair_seconds_p50: p50,
                repair_seconds_p99: p99,
                repair_seconds_max: hist.max_scaled(),
                patched_columns: patched,
                patched_columns_per_sec: patched as f64 / secs,
                fib_checksum: fib_checksum(&g, &sp),
                speedup_vs_batch1: 1.0,
            }
        })
        .collect();

    // Batching must never change where packets go.
    if let Some(first) = entries.first() {
        let expect = first.fib_checksum;
        for e in &entries {
            assert_eq!(
                e.fib_checksum, expect,
                "batch size {} diverged from batch size {}",
                e.batch_size, first.batch_size
            );
        }
    }
    if let Some(base_ups) = entries
        .iter()
        .find(|e| e.batch_size == 1)
        .map(|e| e.updates_per_sec)
    {
        for e in &mut entries {
            e.speedup_vs_batch1 = e.updates_per_sec / base_ups.max(1e-12);
        }
    }
    Ok(entries)
}

/// Schema version stamped into every `BENCH_churn.json`. Bump when a
/// field is renamed, removed, or changes meaning; adding fields is
/// compatible.
pub const SCHEMA_VERSION: u64 = 1;

/// Render entries as the `BENCH_churn.json` document.
///
/// Stable schema (version [`SCHEMA_VERSION`]):
///
/// ```json
/// {
///   "benchmark": "churn",
///   "schema_version": 1,
///   "topology": "<name>",
///   "seed": <u64>,
///   "k": <usize>,
///   "schedule_len": <usize>,
///   "entries": [ { one object per batch size, fields as in ChurnBenchEntry } ]
/// }
/// ```
pub fn render(
    topology: &str,
    k: usize,
    schedule_len: usize,
    seed: u64,
    entries: &[ChurnBenchEntry],
) -> String {
    let mut arr = JsonArray::new();
    for e in entries {
        arr = arr.push_raw(
            &JsonObject::new()
                .field_u64("batch_size", e.batch_size as u64)
                .field_u64("batches", e.batches as u64)
                .field_u64("events_applied", e.events_applied as u64)
                .field_u64("rebuilds", e.rebuilds as u64)
                .field_f64("updates_per_sec", e.updates_per_sec)
                .field_f64("repair_seconds_p50", e.repair_seconds_p50)
                .field_f64("repair_seconds_p99", e.repair_seconds_p99)
                .field_f64("repair_seconds_max", e.repair_seconds_max)
                .field_u64("patched_columns", e.patched_columns as u64)
                .field_f64("patched_columns_per_sec", e.patched_columns_per_sec)
                .field_u64("fib_checksum", e.fib_checksum)
                .field_f64("speedup_vs_batch1", e.speedup_vs_batch1)
                .finish(),
        );
    }
    JsonObject::new()
        .field_str("benchmark", "churn")
        .field_u64("schema_version", SCHEMA_VERSION)
        .field_str("topology", topology)
        .field_u64("seed", seed)
        .field_u64("k", k as u64)
        .field_u64("schedule_len", schedule_len as u64)
        .field_raw("entries", &arr.finish())
        .finish()
}

/// Measure on `topology` and write `BENCH_churn.json` to `path`.
#[allow(clippy::too_many_arguments)]
pub fn write_churn_report(
    path: impl AsRef<Path>,
    topology: &str,
    k: usize,
    schedule_len: usize,
    batch_sizes: &[usize],
    seed: u64,
) -> Result<(), LabError> {
    let entries = measure(topology, k, schedule_len, batch_sizes, seed)?;
    let mut text = render(topology, k, schedule_len, seed, &entries);
    text.push('\n');
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_entries_agree_across_batch_sizes() {
        let entries = measure("abilene", 3, 40, &[1, 4], 7).unwrap();
        assert_eq!(entries.len(), 2);
        let expect = entries[0].fib_checksum;
        for e in &entries {
            assert_eq!(e.fib_checksum, expect);
            assert!(e.batches > 0);
            assert!(e.events_applied > 0);
            assert!(e.updates_per_sec > 0.0);
            assert!(e.repair_seconds_p50 > 0.0);
            assert!(e.repair_seconds_p99 >= e.repair_seconds_p50);
            assert!(e.repair_seconds_p99 <= e.repair_seconds_max);
            assert!(e.patched_columns > 0);
        }
        // Every non-recovery event lands in a timed batch regardless of
        // the batch size.
        assert_eq!(entries[0].events_applied, entries[1].events_applied);
        assert_eq!(entries[0].rebuilds, entries[1].rebuilds);
        assert!((entries[0].speedup_vs_batch1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn checksum_tracks_forwarding_state() {
        let topo = load_topology("abilene").unwrap();
        let g = topo.graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(2, 0.0, 3.0), 7);
        let a = fib_checksum(&g, &sp);
        assert_eq!(a, fib_checksum(&g, &sp));
        let repaired = sp.repair(
            &g,
            &splice_core::slices::RepairEvent::LinkFailure(splice_graph::EdgeId(0)),
        );
        assert_ne!(a, fib_checksum(&g, &repaired));
    }

    #[test]
    fn report_renders_and_writes() {
        let entries = measure("abilene", 2, 24, &[1, 8], 7).unwrap();
        let json = render("abilene", 2, 24, 7, &entries);
        assert!(json.contains(r#""benchmark":"churn""#));
        assert!(json.contains(r#""schema_version":1"#));
        assert!(json.contains(r#""updates_per_sec""#));
        assert!(json.contains(r#""fib_checksum""#));
        assert!(json.contains(r#""speedup_vs_batch1""#));

        let dir = std::env::temp_dir().join("splice-bench-churn-report");
        let path = dir.join("BENCH_churn.json");
        write_churn_report(&path, "abilene", 2, 24, &[1], 7).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains(r#""benchmark":"churn""#));
        assert!(back.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
