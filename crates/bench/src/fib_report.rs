//! Measured spliced-FIB arena numbers, written to `BENCH_fib.json`.
//!
//! The criterion suite in `benches/fib_arena.rs` gives statistically
//! rigorous timings; this module produces the companion machine-readable
//! summary the CI and the §4.2 state-size discussion consume: for each k,
//! one timed splicing build, the measured arena byte footprint, the
//! per-hop cost of a full all-pairs data-plane walk, and the cost of
//! taking a zero-copy prefix view. Plain `Instant` timing keeps the
//! writer dependency-free so it runs even where criterion is absent.

use splice_core::forwarding::{Forwarder, ForwarderOptions};
use splice_core::header::ForwardingBits;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::EdgeMask;
use splice_sim::lab::LabError;
use splice_telemetry::{JsonArray, JsonObject};
use splice_topology::TopologyError;
use std::path::Path;
use std::time::Instant;

use crate::load_topology;

/// Measured numbers for one value of k.
#[derive(Clone, Debug)]
pub struct FibBenchEntry {
    /// Number of slices.
    pub k: usize,
    /// Wall time of one `Splicing::build` (k·n Dijkstras into the arena).
    pub build_seconds: f64,
    /// Measured arena footprint in bytes — the §4.2 state size.
    pub arena_bytes: usize,
    /// Installed (non-sentinel) FIB entries.
    pub installed_entries: usize,
    /// Mean wall time per forwarded hop over an all-pairs slice-0 walk.
    pub walk_seconds_per_hop: f64,
    /// Hops taken by that walk (the divisor above).
    pub walk_hops: usize,
    /// Mean wall time of one `Splicing::prefix` view (expected O(1)).
    pub prefix_view_seconds: f64,
}

/// Measure builds, walks, and prefix views on `topology` for each k.
pub fn measure(
    topology: &str,
    ks: &[usize],
    seed: u64,
) -> Result<Vec<FibBenchEntry>, TopologyError> {
    let topo = load_topology(topology)?;
    let g = topo.graph();
    let entries = ks
        .iter()
        .map(|&k| {
            let cfg = SplicingConfig::degree_based(k, 0.0, 3.0);
            let t0 = Instant::now();
            let sp = Splicing::build(&g, &cfg, seed);
            let build_seconds = t0.elapsed().as_secs_f64();

            let mask = EdgeMask::all_up(g.edge_count());
            let fwd = Forwarder::new(&sp, &g, &mask);
            let opts = ForwarderOptions::default();
            let mut walk_hops = 0usize;
            let t0 = Instant::now();
            for s in g.nodes() {
                for t in g.nodes() {
                    if s == t {
                        continue;
                    }
                    let out = fwd.forward(s, t, ForwardingBits::stay_in_slice(0, k), &opts);
                    walk_hops += out.trace().hop_count();
                }
            }
            let walk_seconds = t0.elapsed().as_secs_f64();

            const VIEWS: usize = 10_000;
            let t0 = Instant::now();
            for _ in 0..VIEWS {
                std::hint::black_box(sp.prefix(k));
            }
            let prefix_view_seconds = t0.elapsed().as_secs_f64() / VIEWS as f64;

            FibBenchEntry {
                k,
                build_seconds,
                arena_bytes: sp.state_bytes(),
                installed_entries: sp.total_state(),
                walk_seconds_per_hop: walk_seconds / walk_hops.max(1) as f64,
                walk_hops,
                prefix_view_seconds,
            }
        })
        .collect();
    Ok(entries)
}

/// Schema version stamped into every `BENCH_fib.json`. Bump when a field
/// is renamed, removed, or changes meaning; adding fields is compatible.
pub const SCHEMA_VERSION: u64 = 1;

/// Render entries as the `BENCH_fib.json` document.
///
/// Stable schema (version [`SCHEMA_VERSION`]):
///
/// ```json
/// {
///   "benchmark": "fib_arena",
///   "schema_version": 1,
///   "topology": "<name>",
///   "seed": <u64>,
///   "entries": [ { one object per k, fields as in FibBenchEntry } ]
/// }
/// ```
pub fn render(topology: &str, seed: u64, entries: &[FibBenchEntry]) -> String {
    let mut arr = JsonArray::new();
    for e in entries {
        arr = arr.push_raw(
            &JsonObject::new()
                .field_u64("k", e.k as u64)
                .field_f64("build_seconds", e.build_seconds)
                .field_u64("arena_bytes", e.arena_bytes as u64)
                .field_u64("installed_entries", e.installed_entries as u64)
                .field_f64("walk_seconds_per_hop", e.walk_seconds_per_hop)
                .field_u64("walk_hops", e.walk_hops as u64)
                .field_f64("prefix_view_seconds", e.prefix_view_seconds)
                .finish(),
        );
    }
    JsonObject::new()
        .field_str("benchmark", "fib_arena")
        .field_u64("schema_version", SCHEMA_VERSION)
        .field_str("topology", topology)
        .field_u64("seed", seed)
        .field_raw("entries", &arr.finish())
        .finish()
}

/// Measure on `topology` and write `BENCH_fib.json` to `path`.
pub fn write_fib_report(
    path: impl AsRef<Path>,
    topology: &str,
    ks: &[usize],
    seed: u64,
) -> Result<(), LabError> {
    let entries = measure(topology, ks, seed)?;
    let mut text = render(topology, seed, &entries);
    text.push('\n');
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_entries_are_sane() {
        let entries = measure("abilene", &[1, 2], 7).unwrap();
        assert_eq!(entries.len(), 2);
        // §4.2: arena bytes exactly linear in k.
        assert_eq!(entries[1].arena_bytes, 2 * entries[0].arena_bytes);
        // Abilene is connected: full FIBs, n·(n-1) entries per slice.
        assert_eq!(entries[0].installed_entries, 11 * 10);
        assert_eq!(entries[1].installed_entries, 2 * 11 * 10);
        for e in &entries {
            assert!(e.build_seconds > 0.0);
            assert!(e.walk_hops > 0);
            assert!(e.prefix_view_seconds >= 0.0);
        }
    }

    #[test]
    fn report_renders_and_writes() {
        let entries = measure("abilene", &[1], 7).unwrap();
        let json = render("abilene", 7, &entries);
        assert!(json.contains(r#""benchmark":"fib_arena""#));
        assert!(json.contains(r#""schema_version":1"#));
        assert!(json.contains(r#""topology":"abilene""#));
        assert!(json.contains(r#""arena_bytes""#));
        assert!(json.contains(r#""walk_seconds_per_hop""#));

        let dir = std::env::temp_dir().join("splice-bench-fib-report");
        let path = dir.join("BENCH_fib.json");
        write_fib_report(&path, "abilene", &[1], 7).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains(r#""benchmark":"fib_arena""#));
        assert!(back.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
