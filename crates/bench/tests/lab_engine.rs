//! Engine-level acceptance tests: the `splice-lab` engine must produce
//! byte-identical artifacts to the underlying simulation APIs, stamp
//! every manifest with the schema version, and make `run-all` sweeps
//! resumable with each spliced deployment built exactly once.

use splice_bench::registry;
use splice_sim::lab::{run_all, run_experiment, DeploymentCache, LabArgs};
use splice_sim::output::series_to_csv;
use splice_sim::reliability::{reliability_experiment, ReliabilityConfig};
use std::path::PathBuf;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn lab_args(trials: usize, seed: u64, out: &PathBuf) -> LabArgs {
    LabArgs {
        trials: Some(trials),
        seed,
        topology: "abilene".into(),
        out: out.clone(),
        semantics: "union".into(),
        strategy: splice_core::strategy::StrategyKind::PerturbedSpf,
        listen: None,
        linger_secs: 0,
        batch_size: None,
    }
}

/// The CI reproducibility gate: fig3 through the engine is bit-identical
/// to calling the reliability API directly with the same seed.
#[test]
fn fig3_engine_csv_matches_direct_api_byte_for_byte() {
    let dir = fresh_dir("splice-lab-fig3-identity");
    let reg = registry();
    let exp = reg.find("fig3").expect("fig3 alias registered");
    run_experiment(exp, &lab_args(3, 11, &dir), &DeploymentCache::new()).unwrap();
    let engine_csv = std::fs::read_to_string(dir.join("fig3_reliability_abilene_union.csv"))
        .expect("engine wrote the fig3 CSV");

    let topo = splice_topology::resolve("abilene").unwrap();
    let out = reliability_experiment(&topo.graph(), &ReliabilityConfig::figure3(3, 11));
    let mut series = out.curves.clone();
    series.push(out.best_possible.clone());
    let direct_csv = series_to_csv(&series).unwrap();

    assert_eq!(engine_csv, direct_csv);
    std::fs::remove_dir_all(&dir).ok();
}

/// One sweep over the whole catalogue: every experiment lands a
/// schema-stamped manifest, the shared deployment cache builds each
/// `(k, perturbation, seed)` deployment exactly once, and `resume`
/// skips everything the first pass completed.
#[test]
fn run_all_stamps_manifests_shares_deployments_and_resumes() {
    let dir = fresh_dir("splice-lab-run-all");
    let reg = registry();
    let args = lab_args(1, 20080817, &dir);

    let first = run_all(&reg, &args, false).unwrap();
    assert_eq!(first.ran.len(), reg.len());
    assert!(first.skipped.is_empty());
    // Cache-sharing acceptance: strategy_sweep cold-builds its four k=5
    // deployments (one per strategy), te_vs_tuning adds k=1 and
    // capacity_multipath k=10; te_load_balance's k=5 (same key as the
    // sweep's perturbed-spf build), te_vs_tuning's k=5, ecmp_baseline's
    // and srlg_failures' k=10 reuse them. Per-trial builders bypass the
    // cache by design.
    assert_eq!(first.cache.misses, 6);
    assert_eq!(first.cache.hits, 4);

    let manifests: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with("_manifest.json"))
        })
        .collect();
    assert_eq!(manifests.len(), reg.len());
    for path in &manifests {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(
            text.contains(r#""schema_version":1"#),
            "{} lacks the schema stamp",
            path.display()
        );
        assert!(text.contains(r#""deployment_cache""#));
    }

    let second = run_all(&reg, &args, true).unwrap();
    assert!(second.ran.is_empty());
    assert_eq!(second.skipped.len(), reg.len());

    // A different seed invalidates every shard header: nothing skips.
    let reseeded = lab_args(1, 7, &dir);
    let third = run_all(&reg, &reseeded, true).unwrap();
    assert_eq!(third.ran.len(), reg.len());
    std::fs::remove_dir_all(&dir).ok();
}
