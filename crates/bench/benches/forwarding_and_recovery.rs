//! Criterion: the data plane's per-packet costs — header codec, a full
//! forwarding walk, end-system recovery, and network-based deflection.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::prelude::*;
use splice_core::slices::SplicingConfig;
use splice_graph::{EdgeMask, NodeId};
use splice_topology::sprint::sprint;

fn bench_header_codec(c: &mut Criterion) {
    c.bench_function("header_encode_decode_20hops_k10", |b| {
        let hops: Vec<u8> = (0..20).map(|i| (i % 10) as u8).collect();
        b.iter(|| {
            let h = ForwardingBits::from_hops(&hops, 10);
            let bytes = h.to_bytes();
            let mut back = ForwardingBits::from_bytes(&bytes).unwrap();
            let mut acc = 0usize;
            while let Some(s) = back.read_and_shift(10) {
                acc += s;
            }
            acc
        });
    });
}

fn bench_forwarding_walk(c: &mut Criterion) {
    let g = sprint().graph();
    let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 42);
    let mask = EdgeMask::all_up(g.edge_count());
    let fwd = Forwarder::new(&sp, &g, &mask);
    let opts = ForwarderOptions::default();
    c.bench_function("forward_walk_sprint_k5", |b| {
        b.iter(|| {
            fwd.forward(
                NodeId(0),
                NodeId(47),
                ForwardingBits::stay_in_slice(0, 5),
                &opts,
            )
        });
    });
}

fn bench_end_system_recovery(c: &mut Criterion) {
    let g = sprint().graph();
    let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 42);
    let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(47)).unwrap();
    let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
    let fwd = Forwarder::new(&sp, &g, &mask);
    let opts = ForwarderOptions::default();
    let rec = EndSystemRecovery::default();
    c.bench_function("end_system_recovery_sprint_k5", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| rec.recover(&fwd, NodeId(0), NodeId(47), 0, &opts, &mut rng));
    });
}

fn bench_network_recovery(c: &mut Criterion) {
    let g = sprint().graph();
    let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 42);
    let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(47)).unwrap();
    let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
    let nr = NetworkRecovery::default();
    c.bench_function("network_recovery_sprint_k5", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| nr.forward(&sp, &mask, NodeId(0), NodeId(47), 0, &mut rng));
    });
}

criterion_group!(
    benches,
    bench_header_codec,
    bench_forwarding_walk,
    bench_end_system_recovery,
    bench_network_recovery
);
criterion_main!(benches);
