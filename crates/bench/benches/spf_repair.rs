//! Criterion: incremental slice repair vs. full rebuild — one delta-SPF
//! `Splicing::repair` after a single-link failure against the full k·n
//! Dijkstra `Splicing::build` it replaces, plus a whole-node failure
//! (every incident link at once) as the heavier repair case.
//!
//! Before criterion runs, a machine-readable summary of the same
//! quantities is written to `BENCH_spf_repair.json` at the repo root (see
//! `splice_bench::repair_report`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use splice_core::slices::{RepairEvent, Splicing, SplicingConfig};
use splice_graph::{EdgeId, NodeId};
use splice_topology::sprint::sprint;

fn bench_full_rebuild(c: &mut Criterion) {
    let g = sprint().graph();
    let mut group = c.benchmark_group("spf_rebuild_sprint");
    group.sample_size(20);
    for k in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = SplicingConfig::degree_based(k, 0.0, 3.0);
            b.iter(|| Splicing::build(&g, &cfg, 42));
        });
    }
    group.finish();
}

fn bench_link_repair(c: &mut Criterion) {
    let g = sprint().graph();
    let event = RepairEvent::LinkFailure(EdgeId(0));
    let mut group = c.benchmark_group("spf_repair_link_sprint");
    for k in [1usize, 5, 10] {
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 42);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| sp.repair(&g, &event));
        });
    }
    group.finish();
}

fn bench_node_repair(c: &mut Criterion) {
    let g = sprint().graph();
    let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 42);
    let event = RepairEvent::NodeFailure(NodeId(0));
    c.bench_function("spf_repair_node_sprint_k5", |b| {
        b.iter(|| sp.repair(&g, &event));
    });
}

criterion_group!(
    benches,
    bench_full_rebuild,
    bench_link_repair,
    bench_node_repair
);

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spf_repair.json");
    if let Err(e) =
        splice_bench::repair_report::write_repair_report(path, "sprint", &[1, 5, 10], 42)
    {
        eprintln!("warning: could not write BENCH_spf_repair.json: {e}");
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
