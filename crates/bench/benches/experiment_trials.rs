//! Criterion: the cost of one Monte-Carlo trial of each headline
//! experiment — what the figure-regeneration binaries pay per sample.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_sim::failure::FailureModel;
use splice_topology::sprint::sprint;

/// One Figure-3-style trial: build slices, fail links, evaluate all k.
fn bench_reliability_trial(c: &mut Criterion) {
    let g = sprint().graph();
    let cfg = SplicingConfig::degree_based(10, 0.0, 3.0);
    c.bench_function("fig3_one_trial_sprint", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let sp = Splicing::build(&g, &cfg, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let mask = FailureModel::IidLinks { p: 0.05 }.sample(&g, &mut rng);
            let mut acc = 0usize;
            for k in [1usize, 2, 3, 4, 5, 10] {
                acc += sp.disconnected_pairs(k, &mask);
            }
            acc
        });
    });
}

/// Spliced reachability for one destination (the inner loop of Figure 3).
fn bench_reachability(c: &mut Criterion) {
    let g = sprint().graph();
    let sp = Splicing::build(&g, &SplicingConfig::degree_based(10, 0.0, 3.0), 3);
    let mut rng = StdRng::seed_from_u64(5);
    let mask = FailureModel::IidLinks { p: 0.05 }.sample(&g, &mut rng);
    c.bench_function("spliced_reachability_one_dst_k10", |b| {
        b.iter(|| sp.reachable_to(splice_graph::NodeId(0), 10, &mask));
    });
}

/// Union-graph reachability (the paper's accounting) for one destination.
fn bench_union_reachability(c: &mut Criterion) {
    let g = sprint().graph();
    let sp = Splicing::build(&g, &SplicingConfig::degree_based(10, 0.0, 3.0), 3);
    let mut rng = StdRng::seed_from_u64(5);
    let mask = FailureModel::IidLinks { p: 0.05 }.sample(&g, &mut rng);
    c.bench_function("union_reachability_one_dst_k10", |b| {
        b.iter(|| sp.union_reachable_to(splice_graph::NodeId(0), 10, &mask));
    });
}

/// Coverage-aware construction vs the independent baseline.
fn bench_coverage_aware_build(c: &mut Criterion) {
    let g = sprint().graph();
    let cfg = splice_core::coverage::CoverageConfig {
        base: SplicingConfig::degree_based(5, 0.0, 3.0),
        penalty: 1.0,
    };
    c.bench_function("coverage_aware_build_sprint_k5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            splice_core::coverage::build_coverage_aware(&g, &cfg, seed)
        });
    });
}

/// One k-best BGP convergence on an internet-like AS graph.
fn bench_bgp_convergence(c: &mut Criterion) {
    let g = splice_bgp::asgraph::AsGraph::internet_like(4, 12, 40, 7);
    c.bench_function("bgp_converge_56as_k3", |b| {
        b.iter(|| splice_bgp::bgp_sim::BgpSim::converge(&g, splice_bgp::asgraph::AsId(20), 3));
    });
}

/// One convergence-dynamics timeline + downtime integral.
fn bench_dynamics_timeline(c: &mut Criterion) {
    let topo = sprint();
    let g = topo.graph();
    let lat = topo.latencies();
    let w = g.base_weights();
    let cfg = splice_routing::dynamics::DynamicsConfig::default();
    c.bench_function("dynamics_downtime_one_link_sprint", |b| {
        b.iter(|| {
            let tl = splice_routing::dynamics::failure_timeline(
                &g,
                &lat,
                &w,
                splice_graph::EdgeId(10),
                &cfg,
            );
            splice_routing::dynamics::downtime_pair_ms(&g, &tl)
        });
    });
}

criterion_group!(
    benches,
    bench_reliability_trial,
    bench_reachability,
    bench_union_reachability,
    bench_coverage_aware_build,
    bench_bgp_convergence,
    bench_dynamics_timeline
);
criterion_main!(benches);
