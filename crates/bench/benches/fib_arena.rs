//! Criterion: the flat spliced-FIB arena — splicing build cost (k·n
//! Dijkstras through one reused workspace into the arena), a full
//! data-plane walk reading arena rows, and the O(1) zero-copy prefix
//! view that replaced per-trial deep clones.
//!
//! Before criterion runs, a machine-readable summary of the same
//! quantities is written to `BENCH_fib.json` at the repo root (see
//! `splice_bench::fib_report`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use splice_core::forwarding::{Forwarder, ForwarderOptions};
use splice_core::header::ForwardingBits;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::EdgeMask;
use splice_topology::sprint::sprint;

fn bench_splicing_build(c: &mut Criterion) {
    let g = sprint().graph();
    let mut group = c.benchmark_group("fib_arena_build_sprint");
    group.sample_size(20);
    for k in [1usize, 2, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = SplicingConfig::degree_based(k, 0.0, 3.0);
            b.iter(|| Splicing::build(&g, &cfg, 42));
        });
    }
    group.finish();
}

fn bench_dataplane_walk(c: &mut Criterion) {
    let g = sprint().graph();
    let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 42);
    let mask = EdgeMask::all_up(g.edge_count());
    let fwd = Forwarder::new(&sp, &g, &mask);
    let opts = ForwarderOptions::default();
    c.bench_function("fib_arena_walk_all_pairs_sprint_k5", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for s in g.nodes() {
                for t in g.nodes() {
                    if s == t {
                        continue;
                    }
                    let out = fwd.forward(s, t, ForwardingBits::stay_in_slice(0, 5), &opts);
                    hops += out.trace().hop_count();
                }
            }
            hops
        });
    });
}

fn bench_prefix_view(c: &mut Criterion) {
    let g = sprint().graph();
    let sp = Splicing::build(&g, &SplicingConfig::degree_based(10, 0.0, 3.0), 42);
    let mut group = c.benchmark_group("fib_arena_prefix_view_sprint");
    for k in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| sp.prefix(k));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_splicing_build,
    bench_dataplane_walk,
    bench_prefix_view
);

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fib.json");
    if let Err(e) = splice_bench::fib_report::write_fib_report(path, "sprint", &[1, 2, 5, 10], 42) {
        eprintln!("warning: could not write BENCH_fib.json: {e}");
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
