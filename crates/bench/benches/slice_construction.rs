//! Criterion: slice construction cost — the control-plane work of path
//! splicing (§4.2 claims linear growth in k; this measures the constant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_topology::sprint::sprint;

fn bench_slice_construction(c: &mut Criterion) {
    let g = sprint().graph();
    let mut group = c.benchmark_group("slice_construction_sprint");
    group.sample_size(20);
    for k in [1usize, 2, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = SplicingConfig::degree_based(k, 0.0, 3.0);
            b.iter(|| Splicing::build(&g, &cfg, 42));
        });
    }
    group.finish();
}

fn bench_protocol_convergence(c: &mut Criterion) {
    let g = sprint().graph();
    let mut group = c.benchmark_group("multitopology_converge_sprint");
    group.sample_size(10);
    for k in [1usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = SplicingConfig::degree_based(k, 0.0, 3.0);
            let sp = Splicing::build(&g, &cfg, 42);
            let weights: Vec<Vec<f64>> = (0..sp.k()).map(|i| sp.weights(i).to_vec()).collect();
            b.iter(|| splice_routing::MultiTopology::converge(&g, weights.clone()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_slice_construction,
    bench_protocol_convergence
);
criterion_main!(benches);
