//! Criterion: the graph substrate's primitives on the Sprint topology.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_graph::maxflow::edge_connectivity_st;
use splice_graph::mincut::min_cut_links;
use splice_graph::traversal::disconnected_pairs;
use splice_graph::{dijkstra, EdgeMask, NodeId};
use splice_topology::sprint::sprint;

fn bench_dijkstra(c: &mut Criterion) {
    let g = sprint().graph();
    let w = g.base_weights();
    c.bench_function("dijkstra_sprint", |b| {
        b.iter(|| dijkstra(&g, NodeId(0), &w));
    });
    c.bench_function("dijkstra_all_destinations_sprint", |b| {
        b.iter(|| splice_graph::dijkstra::all_destinations(&g, &w));
    });
}

fn bench_mincut(c: &mut Criterion) {
    let g = sprint().graph();
    c.bench_function("stoer_wagner_sprint", |b| {
        b.iter(|| min_cut_links(&g));
    });
}

fn bench_maxflow(c: &mut Criterion) {
    let g = sprint().graph();
    c.bench_function("edge_connectivity_st_sprint", |b| {
        b.iter(|| edge_connectivity_st(&g, NodeId(0), NodeId(47)));
    });
}

fn bench_components(c: &mut Criterion) {
    let g = sprint().graph();
    let mut mask = EdgeMask::all_up(g.edge_count());
    for i in (0..g.edge_count()).step_by(7) {
        mask.fail(splice_graph::EdgeId(i as u32));
    }
    c.bench_function("disconnected_pairs_sprint", |b| {
        b.iter(|| disconnected_pairs(&g, &mask));
    });
}

criterion_group!(
    benches,
    bench_dijkstra,
    bench_mincut,
    bench_maxflow,
    bench_components
);
criterion_main!(benches);
