//! Property/fuzz tests for the wire formats: the decoder must never
//! panic, and valid packets must round-trip exactly.

use bytes::Bytes;
use proptest::prelude::*;
use splice_core::header::ForwardingBits;
use splice_dataplane::packet::{Packet, NET_HEADER_LEN, SHIM_LEN};
use splice_graph::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::decode(&Bytes::from(bytes));
    }

    /// Valid spliced packets round-trip byte-exactly.
    #[test]
    fn spliced_roundtrip(src in any::<u32>(), dst in any::<u32>(), ttl in any::<u8>(),
                         hops in proptest::collection::vec(0u8..4, 0..20),
                         payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bits = ForwardingBits::from_hops(&hops, 4);
        let p = Packet::spliced(NodeId(src), NodeId(dst), ttl, bits, Bytes::from(payload));
        let wire = p.encode();
        prop_assert_eq!(wire.len(), NET_HEADER_LEN + SHIM_LEN + p.payload.len());
        let q = Packet::decode(&wire).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Valid plain packets round-trip byte-exactly.
    #[test]
    fn plain_roundtrip(src in any::<u32>(), dst in any::<u32>(), ttl in any::<u8>(),
                       payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let p = Packet::plain(NodeId(src), NodeId(dst), ttl, Bytes::from(payload));
        let q = Packet::decode(&p.encode()).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Single-byte corruption is either detected or yields another
    /// well-formed packet — never a panic, never a misparse beyond the
    /// buffer.
    #[test]
    fn single_byte_corruption_is_safe(pos in 0usize..40, val in any::<u8>(),
                                      hops in proptest::collection::vec(0u8..4, 1..10)) {
        let bits = ForwardingBits::from_hops(&hops, 4);
        let p = Packet::spliced(NodeId(1), NodeId(2), 9, bits, Bytes::from_static(b"abcdef"));
        let mut raw = p.encode().to_vec();
        let pos = pos % raw.len();
        raw[pos] = val;
        let _ = Packet::decode(&Bytes::from(raw));
    }

    /// Truncation at any point is rejected or parses within bounds.
    #[test]
    fn truncation_is_safe(cut in 0usize..40) {
        let bits = ForwardingBits::from_hops(&[1, 2, 3], 4);
        let p = Packet::spliced(NodeId(1), NodeId(2), 9, bits, Bytes::from_static(b"payload"));
        let raw = p.encode();
        let cut = cut % (raw.len() + 1);
        let truncated = raw.slice(..cut);
        // Either an error (usual) or, if the length field happens to
        // match, a consistent packet.
        if let Ok(q) = Packet::decode(&truncated) {
            prop_assert!(q.payload.len() <= truncated.len());
        }
    }
}
