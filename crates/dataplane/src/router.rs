//! One router's forwarding pipeline.
//!
//! A [`Router`] reads its rows of the shared spliced-FIB arena and processes packets
//! byte-for-byte: parse, pick the slice from the shim (Algorithm 1),
//! look up the next hop, decrement TTL, re-serialize. Three deployment
//! flavours from §3.2:
//!
//! * splicing-capable (default) — executes Algorithm 1;
//! * legacy (`splicing_enabled = false`) — ignores the shim and forwards
//!   on the destination in slice 0, the incremental-deployment story;
//! * locally recovering (`network_recovery = true`) — on a dead next-hop
//!   link, deflects into an alternate slice with a live next hop (§4.3's
//!   network-based recovery).

use crate::packet::Packet;
use crate::walk::{scalar_walk, WalkOutcome};
use splice_core::forwarding::ForwarderOptions;
use splice_core::hash::slice_for_flow;
use splice_core::header::ForwardingBits;
use splice_core::slices::Splicing;
use splice_graph::{EdgeId, EdgeMask, NodeId};
use splice_routing::SpliceFib;
use std::sync::Arc;

/// Per-router behaviour switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterConfig {
    /// Whether this router reads the splicing shim at all.
    pub splicing_enabled: bool,
    /// Whether this router performs local network-based recovery.
    pub network_recovery: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            splicing_enabled: true,
            network_recovery: false,
        }
    }
}

/// What the router decided to do with a packet.
#[derive(Clone, Debug, PartialEq)]
pub enum RouterAction {
    /// Send the (re-serialized) packet over `edge` to `next`.
    Forward {
        /// Outgoing link.
        edge: EdgeId,
        /// Neighbor on that link.
        next: NodeId,
        /// The packet as it leaves (shifted bits, decremented TTL).
        packet: Packet,
        /// The slice whose FIB made the decision.
        slice: usize,
        /// Whether local network-based recovery overrode the slice the
        /// packet asked for (its link was down).
        deflected: bool,
    },
    /// The packet is for this router.
    Deliver(Packet),
    /// Dropped, with the reason.
    Drop(DropReason),
}

/// Why a router dropped a packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// TTL reached zero.
    TtlExpired,
    /// No FIB entry for the destination in the chosen slice.
    NoRoute,
    /// Next-hop link down and recovery disabled or exhausted.
    LinkDown,
}

/// One router: its id, a handle on the shared spliced-FIB arena, and its
/// config.
///
/// Routers don't copy forwarding state: every router in a [`crate::network`]
/// shares one [`SpliceFib`] arena behind an `Arc` and reads its own rows
/// out of it — the same aggregate-state picture §4.2 accounts for, and
/// what makes instantiating n routers O(1) per router.
#[derive(Clone, Debug)]
pub struct Router {
    /// This router's node id.
    pub id: NodeId,
    /// The shared flat spliced-FIB arena.
    fib: Arc<SpliceFib>,
    /// Slices this router forwards over (≤ planes in the arena, when the
    /// splicing was a prefix view).
    k: usize,
    /// Behaviour switches.
    pub config: RouterConfig,
}

impl Router {
    /// Bind router `id` to a converged [`Splicing`]'s shared arena.
    pub fn from_splicing(id: NodeId, splicing: &Splicing, config: RouterConfig) -> Router {
        Router {
            id,
            fib: Arc::clone(splicing.arena()),
            k: splicing.k(),
            config,
        }
    }

    /// Number of slices this router carries tables for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Installed FIB entries attributable to this router (state
    /// footprint): its row of each of the k slice planes.
    pub fn state_size(&self) -> usize {
        (0..self.k)
            .map(|s| self.fib.installed_for_router(s, self.id))
            .sum()
    }

    /// Walk one flow end-to-end over this router's shared arena, one hop
    /// at a time, with `Forwarder::forward` semantics (initial slice from
    /// the flow hash, §4.4 stay-in-current on exhaustion, persistent-loop
    /// detection, hop budget). This is the scalar baseline the
    /// [`BatchForwarder`](crate::BatchForwarder) is measured against and
    /// one of the three engines the testkit's differential oracle
    /// compares.
    pub fn forward(
        &self,
        mask: &EdgeMask,
        src: NodeId,
        dst: NodeId,
        header: ForwardingBits,
        opts: &ForwarderOptions,
    ) -> WalkOutcome {
        WalkOutcome::from_outcome(&scalar_walk(&self.fib, mask, src, dst, header, opts))
    }

    /// Process one packet. `link_state` tells which incident links are up;
    /// `current_slice` is the slice the packet was travelling in (carried
    /// by the simulator between hops, since §4.4's stay-in-current-tree
    /// rule needs it once bits run out).
    ///
    /// Returns the action and the slice the packet leaves in.
    pub fn process(
        &self,
        mut packet: Packet,
        current_slice: usize,
        link_state: &EdgeMask,
    ) -> RouterAction {
        if packet.dst == self.id {
            return RouterAction::Deliver(packet);
        }
        if packet.ttl == 0 {
            return RouterAction::Drop(DropReason::TtlExpired);
        }
        packet.ttl -= 1;

        let k = self.k();
        let slice = if self.config.splicing_enabled {
            match packet.shim.as_mut().and_then(|s| s.bits.read_and_shift(k)) {
                Some(s) => s,
                // Bits exhausted (or no shim): stay in the current tree
                // (§4.4). A shim-less packet's "current tree" is the flow
                // hash, Algorithm 1's default branch.
                None => {
                    if packet.shim.is_some() {
                        current_slice
                    } else {
                        slice_for_flow(packet.src, packet.dst, k)
                    }
                }
            }
        } else {
            // Legacy router: destination-based forwarding, slice 0.
            0
        };

        let lookup = |s: usize| self.fib.lookup(s, self.id, packet.dst);
        let usable = |s: usize| lookup(s).filter(|&(_, e)| link_state.is_up(e));

        match lookup(slice) {
            None => RouterAction::Drop(DropReason::NoRoute),
            Some((next, edge)) if link_state.is_up(edge) => RouterAction::Forward {
                edge,
                next,
                packet,
                slice,
                deflected: false,
            },
            Some(_) if self.config.network_recovery => {
                // §4.3 network-based recovery: first alternate slice with a
                // connected next hop.
                match (0..k)
                    .filter(|&s| s != slice)
                    .find_map(|s| usable(s).map(|h| (s, h)))
                {
                    Some((s, (next, edge))) => RouterAction::Forward {
                        edge,
                        next,
                        packet,
                        slice: s,
                        deflected: true,
                    },
                    None => RouterAction::Drop(DropReason::LinkDown),
                }
            }
            Some(_) => RouterAction::Drop(DropReason::LinkDown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splice_core::header::ForwardingBits;
    use splice_core::slices::SplicingConfig;
    use splice_topology::abilene::abilene;

    fn setup() -> (splice_graph::Graph, Splicing) {
        let g = abilene().graph();
        // `link_down_deflects_with_recovery` fails slice 0's first hop for
        // 0 -> 10 and expects the router to deflect onto a different slice,
        // so the slices must diverge at node 0 and 10 must stay
        // spliced-reachable under that failure. Seed 3 qualifies under
        // rand 0.8's StdRng stream; the scan keeps the tests pinned to the
        // property, not the stream.
        let sp = (3..200)
            .map(|seed| Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), seed))
            .find(|sp| {
                let first_hops: std::collections::HashSet<_> = (0..sp.k())
                    .filter_map(|s| sp.next_hop(s, NodeId(0), NodeId(10)))
                    .collect();
                first_hops.len() >= 2
                    && first_hops.iter().all(|&(_, e)| {
                        let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
                        sp.reachable_to(NodeId(10), sp.k(), &mask)[0]
                    })
            })
            .expect("some seed in 3..200 must diverge at node 0");
        (g, sp)
    }

    fn pkt(src: u32, dst: u32, k: usize) -> Packet {
        Packet::spliced(
            NodeId(src),
            NodeId(dst),
            64,
            ForwardingBits::stay_in_slice(0, k),
            Bytes::from_static(b"x"),
        )
    }

    #[test]
    fn forwards_along_slice0() {
        let (g, sp) = setup();
        let r = Router::from_splicing(NodeId(0), &sp, RouterConfig::default());
        let up = EdgeMask::all_up(g.edge_count());
        let action = r.process(pkt(0, 10, sp.k()), 0, &up);
        let RouterAction::Forward {
            next,
            slice,
            packet,
            ..
        } = action
        else {
            panic!("expected forward")
        };
        assert_eq!(slice, 0);
        assert_eq!(
            Some(next),
            sp.next_hop(0, NodeId(0), NodeId(10)).map(|(n, _)| n)
        );
        assert_eq!(packet.ttl, 63, "TTL decremented");
        // One hop of bits consumed.
        assert!(packet.shim.unwrap().bits.is_exhausted());
    }

    #[test]
    fn delivers_to_self() {
        let (g, sp) = setup();
        let r = Router::from_splicing(NodeId(5), &sp, RouterConfig::default());
        let up = EdgeMask::all_up(g.edge_count());
        let action = r.process(pkt(0, 5, sp.k()), 0, &up);
        assert!(matches!(action, RouterAction::Deliver(_)));
    }

    #[test]
    fn ttl_expiry_drops() {
        let (g, sp) = setup();
        let r = Router::from_splicing(NodeId(0), &sp, RouterConfig::default());
        let up = EdgeMask::all_up(g.edge_count());
        let mut p = pkt(0, 10, sp.k());
        p.ttl = 0;
        assert_eq!(
            r.process(p, 0, &up),
            RouterAction::Drop(DropReason::TtlExpired)
        );
    }

    #[test]
    fn link_down_drops_without_recovery() {
        let (g, sp) = setup();
        let r = Router::from_splicing(NodeId(0), &sp, RouterConfig::default());
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        assert_eq!(
            r.process(pkt(0, 10, sp.k()), 0, &mask),
            RouterAction::Drop(DropReason::LinkDown)
        );
    }

    #[test]
    fn link_down_deflects_with_recovery() {
        let (g, sp) = setup();
        let r = Router::from_splicing(
            NodeId(0),
            &sp,
            RouterConfig {
                splicing_enabled: true,
                network_recovery: true,
            },
        );
        let (nh0, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        match r.process(pkt(0, 10, sp.k()), 0, &mask) {
            RouterAction::Forward { next, slice, .. } => {
                assert_ne!(slice, 0);
                assert_ne!(next, nh0);
            }
            other => panic!("expected deflection, got {other:?}"),
        }
    }

    #[test]
    fn legacy_router_ignores_shim() {
        let (g, sp) = setup();
        let r = Router::from_splicing(
            NodeId(0),
            &sp,
            RouterConfig {
                splicing_enabled: false,
                network_recovery: false,
            },
        );
        let up = EdgeMask::all_up(g.edge_count());
        // Header demands slice 3 but the legacy router must use slice 0.
        let p = Packet::spliced(
            NodeId(0),
            NodeId(10),
            64,
            ForwardingBits::stay_in_slice(3, sp.k()),
            Bytes::new(),
        );
        let RouterAction::Forward { slice, packet, .. } = r.process(p, 0, &up) else {
            panic!()
        };
        assert_eq!(slice, 0);
        // And it must not consume bits it did not read.
        assert!(!packet.shim.unwrap().bits.is_exhausted());
    }

    #[test]
    fn exhausted_bits_stay_in_current_slice() {
        let (g, sp) = setup();
        let r = Router::from_splicing(NodeId(0), &sp, RouterConfig::default());
        let up = EdgeMask::all_up(g.edge_count());
        let p = Packet::spliced(
            NodeId(0),
            NodeId(10),
            64,
            ForwardingBits::empty(sp.k()),
            Bytes::new(),
        );
        let RouterAction::Forward { slice, .. } = r.process(p, 2, &up) else {
            panic!()
        };
        assert_eq!(slice, 2, "stays in the tree it was travelling in");
    }

    #[test]
    fn plain_packet_uses_flow_hash() {
        let (g, sp) = setup();
        let r = Router::from_splicing(NodeId(0), &sp, RouterConfig::default());
        let up = EdgeMask::all_up(g.edge_count());
        let p = Packet::plain(NodeId(0), NodeId(10), 64, Bytes::new());
        let RouterAction::Forward { slice, .. } = r.process(p, 0, &up) else {
            panic!()
        };
        assert_eq!(slice, slice_for_flow(NodeId(0), NodeId(10), sp.k()));
    }

    #[test]
    fn state_size_scales_with_k() {
        let g = abilene().graph();
        let sp1 = Splicing::build(&g, &SplicingConfig::degree_based(1, 0.0, 3.0), 3);
        let sp4 = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 3);
        let r1 = Router::from_splicing(NodeId(0), &sp1, RouterConfig::default());
        let r4 = Router::from_splicing(NodeId(0), &sp4, RouterConfig::default());
        assert_eq!(r4.state_size(), 4 * r1.state_size());
        assert_eq!(r1.state_size(), g.node_count() - 1);
    }
}
