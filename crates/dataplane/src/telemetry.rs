//! Data-plane telemetry: the counter set a [`SimNetwork`] reports into,
//! and the JSONL serialization of packet walks.
//!
//! [`RouterStats`](crate::network::RouterStats) keeps *per-router*
//! counters inside the network object; [`NetTelemetry`] aggregates the
//! same events into a shared [`Registry`] so one metric snapshot covers
//! a whole experiment (many networks, many trials). Both are fed from
//! the same match arms in `inject_with_events`, so they can never
//! disagree.

use crate::batch::BatchStats;
use crate::network::DeliveryReport;
use crate::router::DropReason;
use crate::walk::WalkOutcome;
use splice_telemetry::{Counter, Histogram, JsonArray, JsonObject, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate data-plane counters, shared via `Arc` handles.
#[derive(Clone, Debug)]
pub struct NetTelemetry {
    /// Packets forwarded one hop (any router).
    pub forwarded: Arc<Counter>,
    /// Packets delivered to their destination.
    pub delivered: Arc<Counter>,
    /// Drops with TTL expired.
    pub dropped_ttl: Arc<Counter>,
    /// Drops with no FIB route.
    pub dropped_no_route: Arc<Counter>,
    /// Drops with the next-hop link down (recovery off or exhausted).
    pub dropped_link_down: Arc<Counter>,
    /// Forwards where local recovery deflected into an alternate slice.
    pub deflections: Arc<Counter>,
    /// Hops where the packet left in a different slice than it arrived.
    pub slice_switches: Arc<Counter>,
}

impl NetTelemetry {
    /// Register (or re-acquire) the data-plane counter set in `registry`.
    pub fn register(registry: &Registry) -> NetTelemetry {
        let drops = "Packets dropped by the data plane, by reason";
        NetTelemetry {
            forwarded: registry.counter(
                "splice_packets_forwarded_total",
                "Packets forwarded one hop by any router",
            ),
            delivered: registry.counter(
                "splice_packets_delivered_total",
                "Packets delivered to their destination",
            ),
            dropped_ttl: registry.counter_with(
                "splice_packets_dropped_total",
                drops,
                &[("reason", "ttl_expired")],
            ),
            dropped_no_route: registry.counter_with(
                "splice_packets_dropped_total",
                drops,
                &[("reason", "no_route")],
            ),
            dropped_link_down: registry.counter_with(
                "splice_packets_dropped_total",
                drops,
                &[("reason", "link_down")],
            ),
            deflections: registry.counter(
                "splice_deflections_total",
                "Local network-based recovery deflections into an alternate slice",
            ),
            slice_switches: registry.counter(
                "splice_slice_switches_total",
                "Hops where a packet changed routing slice",
            ),
        }
    }

    /// The drop counter for a specific reason.
    pub fn drop_counter(&self, reason: &DropReason) -> &Counter {
        match reason {
            DropReason::TtlExpired => &self.dropped_ttl,
            DropReason::NoRoute => &self.dropped_no_route,
            DropReason::LinkDown => &self.dropped_link_down,
        }
    }
}

/// Batch-forwarding telemetry: throughput counters plus the latency
/// histograms behind the `forward_storm` pps / per-hop-ns / tail
/// numbers. Registered once per experiment; shard workers share the
/// handles (everything inside is atomic).
#[derive(Clone, Debug)]
pub struct ForwardTelemetry {
    /// Packets fully walked by the batch engine.
    pub packets: Arc<Counter>,
    /// Total hops taken across all walked packets.
    pub hops: Arc<Counter>,
    /// Bursts drained.
    pub bursts: Arc<Counter>,
    /// Packets dropped (any non-delivered class).
    pub dropped: Arc<Counter>,
    /// Wall time to drain one burst (tail latency lives here).
    pub burst_seconds: Arc<Histogram>,
    /// Amortized per-hop time within each burst.
    pub hop_seconds: Arc<Histogram>,
    /// Hops per walked packet.
    pub walk_hops: Arc<Histogram>,
}

impl ForwardTelemetry {
    /// Register (or re-acquire) the batch-forwarding metric set.
    pub fn register(registry: &Registry) -> ForwardTelemetry {
        ForwardTelemetry {
            packets: registry.counter(
                "splice_forward_packets_total",
                "Packets fully walked by the batch forwarding engine",
            ),
            hops: registry.counter(
                "splice_forward_hops_total",
                "Hops taken across all batch-forwarded packets",
            ),
            bursts: registry.counter(
                "splice_forward_bursts_total",
                "Packet bursts drained by the batch forwarding engine",
            ),
            dropped: registry.counter(
                "splice_forward_dropped_total",
                "Batch-forwarded packets that did not reach their destination",
            ),
            burst_seconds: registry.histogram_seconds(
                "splice_forward_burst_seconds",
                "Wall time to drain one packet burst",
            ),
            hop_seconds: registry.histogram_seconds(
                "splice_forward_hop_seconds",
                "Amortized per-hop forwarding time within a burst",
            ),
            walk_hops: registry
                .histogram("splice_forward_walk_hops", "Hops taken per walked packet"),
        }
    }

    /// Fold one drained burst in: its outcomes and the wall time the
    /// engine took to drain it.
    pub fn observe_burst(&self, outcomes: &[WalkOutcome], elapsed: Duration) {
        let mut stats = BatchStats::default();
        for out in outcomes {
            stats.record(out);
            self.walk_hops.record(out.hops as u64);
        }
        self.bursts.inc();
        self.packets.add(stats.packets);
        self.hops.add(stats.hops);
        self.dropped.add(stats.packets - stats.delivered);
        self.burst_seconds.record_duration(elapsed);
        if stats.hops > 0 {
            self.hop_seconds
                .record(elapsed.as_nanos() as u64 / stats.hops);
        }
    }
}

/// Serialize one packet walk as a single JSON line for a trace sink.
///
/// Fields: `delivered`, `src`/`dst` (node ids), `hops`, `latency_ms`,
/// `drop` (reason string or `null`), `path` (node ids visited), and
/// `slices` (slice used at each hop).
pub fn report_to_json(report: &DeliveryReport) -> String {
    let mut path = JsonArray::new();
    for n in &report.path {
        path = path.push_u64(n.0 as u64);
    }
    let mut slices = JsonArray::new();
    for &s in &report.slices {
        slices = slices.push_u64(s as u64);
    }
    let src = report.path.first().map(|n| n.0 as u64).unwrap_or(0);
    let dst = report.path.last().map(|n| n.0 as u64).unwrap_or(0);
    let obj = JsonObject::new()
        .field_bool("delivered", report.delivered)
        .field_u64("src", src)
        .field_u64("dst", dst)
        .field_u64("hops", report.path.len().saturating_sub(1) as u64)
        .field_f64("latency_ms", report.latency_ms);
    let obj = match &report.drop {
        Some(reason) => obj.field_str("drop", drop_reason_label(reason)),
        None => obj.field_raw("drop", "null"),
    };
    obj.field_raw("path", &path.finish())
        .field_raw("slices", &slices.finish())
        .finish()
}

/// Stable label for a drop reason (used in metrics and trace lines).
pub fn drop_reason_label(reason: &DropReason) -> &'static str {
    match reason {
        DropReason::TtlExpired => "ttl_expired",
        DropReason::NoRoute => "no_route",
        DropReason::LinkDown => "link_down",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::NodeId;

    fn report(delivered: bool, drop: Option<DropReason>) -> DeliveryReport {
        DeliveryReport {
            delivered,
            path: vec![NodeId(0), NodeId(3), NodeId(7)],
            slices: vec![0, 2],
            latency_ms: 12.5,
            drop,
            final_packet: None,
        }
    }

    #[test]
    fn registers_the_full_counter_set() {
        let reg = Registry::new();
        let tel = NetTelemetry::register(&reg);
        tel.forwarded.add(4);
        tel.deflections.inc();
        tel.drop_counter(&DropReason::TtlExpired).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("splice_packets_forwarded_total 4"));
        assert!(text.contains("splice_deflections_total 1"));
        assert!(text.contains("splice_packets_dropped_total{reason=\"ttl_expired\"} 1"));
        assert!(text.contains("splice_packets_dropped_total{reason=\"no_route\"} 0"));
        assert!(text.contains("splice_packets_dropped_total{reason=\"link_down\"} 0"));
    }

    #[test]
    fn register_twice_shares_counters() {
        let reg = Registry::new();
        let a = NetTelemetry::register(&reg);
        let b = NetTelemetry::register(&reg);
        a.forwarded.inc();
        b.forwarded.inc();
        assert_eq!(a.forwarded.get(), 2);
    }

    #[test]
    fn delivered_walk_serializes() {
        let line = report_to_json(&report(true, None));
        assert_eq!(
            line,
            r#"{"delivered":true,"src":0,"dst":7,"hops":2,"latency_ms":12.5,"drop":null,"path":[0,3,7],"slices":[0,2]}"#
        );
    }

    #[test]
    fn forward_telemetry_folds_bursts() {
        use crate::walk::{WalkClass, NO_SLICE};
        let reg = Registry::new();
        let tel = ForwardTelemetry::register(&reg);
        let outs = [
            WalkOutcome {
                class: WalkClass::Delivered,
                hops: 3,
                last: 1,
                slice: NO_SLICE,
                path_hash: 1,
            },
            WalkOutcome {
                class: WalkClass::DeadEnd,
                hops: 1,
                last: 2,
                slice: NO_SLICE,
                path_hash: 2,
            },
        ];
        tel.observe_burst(&outs, Duration::from_micros(8));
        assert_eq!(tel.packets.get(), 2);
        assert_eq!(tel.hops.get(), 4);
        assert_eq!(tel.dropped.get(), 1);
        assert_eq!(tel.bursts.get(), 1);
        assert_eq!(tel.burst_seconds.count(), 1);
        assert_eq!(tel.hop_seconds.count(), 1);
        assert_eq!(tel.walk_hops.count(), 2);
    }

    #[test]
    fn dropped_walk_names_the_reason() {
        let line = report_to_json(&report(false, Some(DropReason::LinkDown)));
        assert!(line.contains(r#""delivered":false"#));
        assert!(line.contains(r#""drop":"link_down""#));
    }
}
