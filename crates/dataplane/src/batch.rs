//! The struct-of-arrays packet-burst engine.
//!
//! [`BatchForwarder`] drains a whole burst of in-flight packets over
//! one `SpliceFib` snapshot. Per-packet state lives in parallel `Vec`
//! lanes (home slice, cursor, slice, hop count, outcome) — the
//! struct-of-arrays layout keeps the burst's working set to a few
//! contiguous `u32` columns instead of a heap object per packet, while
//! the immutable inputs (src, dst, header bits) are read straight out
//! of the caller's burst slice rather than copied. A setup pass fills
//! the home-slice column; the drain pass then walks each lane to
//! completion with the lane's cursor state hoisted into locals,
//! touching the columns only at the endpoints (load on entry, store on
//! retire) so the per-hop loop is register arithmetic plus the two
//! slab reads.
//!
//! What the scalar walk pays per packet, this engine pays once per
//! forwarder:
//!
//! * no `Trace` — the path is folded into a [`PathHasher`] digest kept
//!   in a register;
//! * no per-packet `HashSet` — persistent-loop detection uses one
//!   pooled [`LaneStamps`] epoch table shared by every lane, re-armed
//!   per lane by bumping an epoch counter (O(1)) rather than clearing
//!   or reallocating, and small enough to stay cache-hot across the
//!   whole burst;
//! * no per-packet flow hash — `Hash(src, dst)` is memoized in an
//!   `n × n` table built once per `(n, k)` (same values, byte-for-byte,
//!   as [`slice_for_flow`]), so the setup pass does one table load per
//!   packet where the scalar walk re-runs the FNV fold;
//! * no per-hop slice-plane multiply — each lane precomputes its plane
//!   base `slice·n² + dst` and re-derives it only on a slice switch, so
//!   the steady-state lookup is one multiply-add into the shared slabs,
//!   with `NO_ROUTE` (`u32::MAX`) rejected straight off the raw word.
//!
//! Semantics are exactly `Forwarder::forward`'s (the differential
//! oracle in `splice-testkit` holds all engines to that): initial slice
//! `Hash(src, dst)`, per-hop header read, §4.4 exhaustion policy,
//! persistent-loop detection on exhausted `(node, slice)` revisits, hop
//! budget checked after the move.
//!
//! The forwarder holds no FIB reference — `forward_burst` borrows a
//! snapshot per call, so a caller can load an `Arc<SpliceFib>` from a
//! [`FibCell`](splice_routing::FibCell) per burst and let the control
//! plane republish between bursts (never mid-burst: that is the
//! torn-column-freedom argument, enforced by borrow, verified by
//! proptest in the testkit).

use crate::walk::{PathHasher, WalkClass, WalkOutcome, NO_SLICE};
use splice_core::forwarding::{ExhaustedPolicy, ForwarderOptions};
use splice_core::hash::slice_for_flow;
use splice_core::header::ForwardingBits;
use splice_graph::{EdgeMask, NodeId};
use splice_routing::{SpliceFib, NO_ROUTE};

/// A pooled, reset-on-reuse `(node, slice)` visit table: the batch
/// engine's replacement for the scalar walk's per-packet `HashSet` (and
/// the pooled analogue of `Trace::loop_lengths`' thread-local stamped
/// `Vec`, which is per-`Trace` and can't be shared by a lane that
/// recycles across bursts).
///
/// Marks are epoch-stamped: `begin` bumps the epoch, instantly
/// invalidating every mark from previous uses, so a recycled lane can
/// never inherit a stale loop stamp — the regression the satellite test
/// `recycled_lane_never_inherits_stale_stamp` pins down. Because
/// re-arming is O(1), one table serves every lane of every burst in
/// turn, keeping the working set a single `n·k` array instead of a
/// cold table per lane.
#[derive(Clone, Debug, Default)]
pub struct LaneStamps {
    /// `epoch`-stamped marks, indexed by flattened `(node, slice)` state.
    table: Vec<u64>,
    /// Current use's epoch; table entries from older epochs are dead.
    epoch: u64,
}

impl LaneStamps {
    /// An empty pool (no table allocated until first use).
    pub fn new() -> LaneStamps {
        LaneStamps::default()
    }

    /// Start a new use over `states` possible `(node, slice)` states.
    /// O(1) unless the table needs to grow; never clears.
    pub fn begin(&mut self, states: usize) {
        if self.table.len() < states {
            self.table.resize(states, 0);
        }
        // Epoch 0 is reserved as "never marked" (the table's fill value),
        // so marks only exist for epochs >= 1.
        self.epoch += 1;
    }

    /// Whether `state` was already marked this use; marks it if not.
    #[inline]
    pub fn seen_or_mark(&mut self, state: usize) -> bool {
        let slot = &mut self.table[state];
        if *slot == self.epoch {
            true
        } else {
            *slot = self.epoch;
            false
        }
    }
}

/// Outcome-class counters for a stream of bursts, mergeable across
/// shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Packets walked.
    pub packets: u64,
    /// Total hops taken (edges crossed) across all packets.
    pub hops: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Walks ending at a slice with no FIB entry.
    pub dead_end: u64,
    /// Walks dropped at a failed next-hop link.
    pub link_down: u64,
    /// Walks caught in a deterministic cycle.
    pub persistent_loop: u64,
    /// Walks that ran out of hop budget.
    pub ttl_exceeded: u64,
}

impl BatchStats {
    /// Fold one outcome in.
    pub fn record(&mut self, out: &WalkOutcome) {
        self.packets += 1;
        self.hops += out.hops as u64;
        match out.class {
            WalkClass::Delivered => self.delivered += 1,
            WalkClass::DeadEnd => self.dead_end += 1,
            WalkClass::LinkDown => self.link_down += 1,
            WalkClass::PersistentLoop => self.persistent_loop += 1,
            WalkClass::TtlExceeded => self.ttl_exceeded += 1,
        }
    }

    /// Fold another shard's counters in.
    pub fn merge(&mut self, other: &BatchStats) {
        self.packets += other.packets;
        self.hops += other.hops;
        self.delivered += other.delivered;
        self.dead_end += other.dead_end;
        self.link_down += other.link_down;
        self.persistent_loop += other.persistent_loop;
        self.ttl_exceeded += other.ttl_exceeded;
    }

    /// Fraction of packets delivered (1.0 for an empty stream).
    pub fn delivery_rate(&self) -> f64 {
        if self.packets == 0 {
            1.0
        } else {
            self.delivered as f64 / self.packets as f64
        }
    }
}

/// The struct-of-arrays burst engine. One instance per worker; lanes
/// (and the pooled loop-stamp table and memoized flow-slice table) are
/// recycled across bursts, so a long-lived forwarder allocates nothing
/// in steady state.
#[derive(Debug)]
pub struct BatchForwarder {
    opts: ForwarderOptions,
    // Per-lane columns, indexed by position in the input burst.
    at: Vec<u32>,
    slice: Vec<u32>,
    /// `Hash(src, dst)` — the initial slice, and the slice HashFallback
    /// re-selects on exhaustion.
    home_slice: Vec<u32>,
    hops: Vec<u32>,
    outcome: Vec<WalkOutcome>,
    /// One pooled loop-stamp table, re-armed (O(1)) per lane.
    stamps: LaneStamps,
    /// Memoized `slice_for_flow` over all `(src, dst)` pairs, keyed by
    /// the `(n, k)` it was built for; empty when `n` is past
    /// [`SLICE_TABLE_MAX_NODES`].
    slice_table: Vec<u16>,
    slice_table_nk: (usize, usize),
    stats: BatchStats,
}

/// Largest `n` the engine memoizes the flow-slice table for (an
/// `n × n` array of `u16`, so 2 MiB at the cutoff). Bigger graphs fall
/// back to hashing per packet, like the scalar walk always does.
const SLICE_TABLE_MAX_NODES: usize = 1024;

impl BatchForwarder {
    /// An engine with the given forwarding knobs.
    pub fn new(opts: ForwarderOptions) -> BatchForwarder {
        BatchForwarder {
            opts,
            at: Vec::new(),
            slice: Vec::new(),
            home_slice: Vec::new(),
            hops: Vec::new(),
            outcome: Vec::new(),
            stamps: LaneStamps::new(),
            slice_table: Vec::new(),
            slice_table_nk: (0, 0),
            stats: BatchStats::default(),
        }
    }

    /// Counters accumulated over every burst so far.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Walk every packet of `pkts` (as `(src, dst, header)`) to
    /// completion over one FIB snapshot and failure mask. Returns the
    /// outcomes in input order.
    ///
    /// The snapshot is borrowed for the whole call: a burst can never
    /// observe a repair mid-flight. Callers interleaving with a control
    /// plane load a fresh `Arc` from a `FibCell` *between* calls.
    pub fn forward_burst(
        &mut self,
        fib: &SpliceFib,
        mask: &EdgeMask,
        pkts: &[(u32, u32, ForwardingBits)],
    ) -> &[WalkOutcome] {
        let k = fib.k();
        let n = fib.n();
        let len = pkts.len();

        self.reset_lanes(len);
        // Columnar setup: the home-slice column, one memoized table load
        // per packet (or the FNV fold itself past the table cutoff). The
        // cursor columns are sized here and stored once per lane when it
        // retires — the walk itself runs on locals.
        self.ensure_slice_table(n, k);
        if self.slice_table.is_empty() {
            self.home_slice.extend(
                pkts.iter()
                    .map(|&(s, d, _)| slice_for_flow(NodeId(s), NodeId(d), k) as u32),
            );
        } else {
            let table = &self.slice_table;
            self.home_slice.extend(
                pkts.iter()
                    .map(|&(s, d, _)| table[s as usize * n + d as usize] as u32),
            );
        }
        self.at.resize(len, 0);
        self.slice.resize(len, 0);
        self.hops.resize(len, 0);

        // Drain: the clean-mask case (no failed edges — the common case
        // for a converged FIB snapshot, whose slices already route
        // around their own repairs) runs a specialization whose hop loop
        // carries no mask test at all; it cannot ever fire.
        if mask.failed_count() == 0 {
            self.drain::<false>(fib, mask, pkts);
        } else {
            self.drain::<true>(fib, mask, pkts);
        }
        &self.outcome
    }

    /// (Re)build the memoized `Hash(src, dst)` table when the snapshot's
    /// `(n, k)` changes. Entries are exactly [`slice_for_flow`]'s values;
    /// graphs past [`SLICE_TABLE_MAX_NODES`] leave the table empty and
    /// hash per packet instead.
    fn ensure_slice_table(&mut self, n: usize, k: usize) {
        if self.slice_table_nk == (n, k) {
            return;
        }
        self.slice_table_nk = (n, k);
        self.slice_table.clear();
        if n > SLICE_TABLE_MAX_NODES || k > usize::from(u16::MAX) {
            return;
        }
        self.slice_table.reserve(n * n);
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                self.slice_table
                    .push(slice_for_flow(NodeId(s), NodeId(d), k) as u16);
            }
        }
    }

    /// Walk every lane to completion, with the lane's cursor state in
    /// locals. The hop loop is split at header exhaustion — selector-
    /// driven hops first, then pinned-slice hops — so each phase only
    /// pays for what it uses: phase one skips loop detection until the
    /// header's last selector is consumed (the scalar's `is_exhausted`
    /// gate, hoisted out of the non-exhausted hops), and phase two drops
    /// the header read entirely, because an exhausted header never
    /// yields again and the slice can no longer change.
    ///
    /// `CHECK_MASK` is false when the mask has no failed edges: the
    /// `LinkDown` test folds away, which is the hop loop for every
    /// converged snapshot.
    fn drain<const CHECK_MASK: bool>(
        &mut self,
        fib: &SpliceFib,
        mask: &EdgeMask,
        pkts: &[(u32, u32, ForwardingBits)],
    ) {
        let k = fib.k();
        let n = fib.n();
        let nn = n * n;
        let (next_hop, out_edge) = fib.slabs();
        let ttl = self.opts.ttl;
        let hash_fallback = matches!(self.opts.exhausted, ExhaustedPolicy::HashFallback);
        let mut stats = BatchStats::default();

        for (lane, &(src, dst, header)) in pkts.iter().enumerate() {
            // Hide the next lane's first FIB miss behind this lane's
            // walk: its first lookup index is computable from setup
            // state alone, and under snapshot rotation that line is
            // usually cold.
            #[cfg(target_arch = "x86_64")]
            if lane + 1 < pkts.len() {
                let (nsrc, ndst, _) = pkts[lane + 1];
                let nidx =
                    self.home_slice[lane + 1] as usize * nn + ndst as usize + nsrc as usize * n;
                // SAFETY: the index is in bounds by construction
                // (home < k, dst < n, src < n), and prefetching reads
                // nothing architecturally.
                unsafe {
                    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                    _mm_prefetch(next_hop.as_ptr().add(nidx) as *const i8, _MM_HINT_T0);
                    _mm_prefetch(out_edge.as_ptr().add(nidx) as *const i8, _MM_HINT_T0);
                }
            }
            let home = self.home_slice[lane];
            let mut at = src;
            let mut slice = home;
            let mut plane_base = home as usize * nn + dst as usize;
            let mut bits = header;
            let mut digest = PathHasher::new();
            let mut hops = 0u32;

            let (class, blamed) = 'walk: {
                if at == dst {
                    // Self-addressed: delivered with zero hops, empty digest.
                    break 'walk (WalkClass::Delivered, NO_SLICE);
                }
                let stamps = &mut self.stamps;
                stamps.begin(n * k);

                // Phase 1: selector-driven hops. The guard means
                // `read_and_shift` always yields here; the hop consuming
                // the last selector already runs under exhausted-state
                // loop detection, exactly as the scalar walk checks
                // `is_exhausted` after the read.
                while !bits.is_exhausted() {
                    let Some(s) = bits.read_and_shift(k) else {
                        break;
                    };
                    let s = s as u32;
                    if s != slice {
                        slice = s;
                        plane_base = s as usize * nn + dst as usize;
                    }
                    if bits.is_exhausted() && stamps.seen_or_mark(at as usize * k + slice as usize)
                    {
                        break 'walk (WalkClass::PersistentLoop, NO_SLICE);
                    }
                    let idx = plane_base + at as usize * n;
                    let nh = next_hop[idx];
                    if nh == NO_ROUTE {
                        break 'walk (WalkClass::DeadEnd, NO_SLICE);
                    }
                    let edge = out_edge[idx];
                    if CHECK_MASK && mask.is_failed(splice_graph::EdgeId(edge)) {
                        break 'walk (WalkClass::LinkDown, slice);
                    }
                    digest.step(at, slice, edge);
                    hops += 1;
                    at = nh;
                    if hops as usize > ttl {
                        break 'walk (WalkClass::TtlExceeded, NO_SLICE);
                    }
                    if nh == dst {
                        break 'walk (WalkClass::Delivered, NO_SLICE);
                    }
                }

                // Phase 2: header exhausted, slice pinned. StayInCurrent
                // keeps the last selection; HashFallback re-selects the
                // home slice once up front — the scalar re-selects it on
                // every exhausted hop, to the same effect.
                if hash_fallback && slice != home {
                    slice = home;
                    plane_base = home as usize * nn + dst as usize;
                }
                loop {
                    if stamps.seen_or_mark(at as usize * k + slice as usize) {
                        break 'walk (WalkClass::PersistentLoop, NO_SLICE);
                    }
                    let idx = plane_base + at as usize * n;
                    let nh = next_hop[idx];
                    if nh == NO_ROUTE {
                        break 'walk (WalkClass::DeadEnd, NO_SLICE);
                    }
                    // The slice is pinned here, so the next iteration's
                    // index is known the moment `nh` lands — start its
                    // (likely cold, under snapshot rotation) lines while
                    // the digest and checks below run.
                    #[cfg(target_arch = "x86_64")]
                    {
                        let nidx = plane_base + nh as usize * n;
                        // SAFETY: in bounds by construction (nh < n when
                        // it is not NO_ROUTE); prefetching reads nothing
                        // architecturally.
                        unsafe {
                            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                            _mm_prefetch(next_hop.as_ptr().add(nidx) as *const i8, _MM_HINT_T0);
                            _mm_prefetch(out_edge.as_ptr().add(nidx) as *const i8, _MM_HINT_T0);
                        }
                    }
                    let edge = out_edge[idx];
                    if CHECK_MASK && mask.is_failed(splice_graph::EdgeId(edge)) {
                        break 'walk (WalkClass::LinkDown, slice);
                    }
                    digest.step(at, slice, edge);
                    hops += 1;
                    at = nh;
                    if hops as usize > ttl {
                        break 'walk (WalkClass::TtlExceeded, NO_SLICE);
                    }
                    if nh == dst {
                        break 'walk (WalkClass::Delivered, NO_SLICE);
                    }
                }
            };

            self.at[lane] = at;
            self.slice[lane] = slice;
            self.hops[lane] = hops;
            let out = WalkOutcome {
                class,
                hops,
                last: at,
                slice: blamed,
                path_hash: digest.finish(),
            };
            stats.record(&out);
            self.outcome.push(out);
        }

        self.stats.merge(&stats);
    }

    /// Truncate every lane column, keeping capacity — and keeping the
    /// `LaneStamps` pool itself (the stamp table survives across lanes
    /// and bursts; `begin` re-arms it per use).
    fn reset_lanes(&mut self, len: usize) {
        self.at.clear();
        self.slice.clear();
        self.home_slice.clear();
        self.hops.clear();
        self.outcome.clear();
        self.home_slice.reserve(len);
        self.outcome.reserve(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::scalar_walk;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use splice_core::slices::{Splicing, SplicingConfig};
    use splice_graph::EdgeId;

    fn setup(k: usize, seed: u64) -> (splice_graph::Graph, Splicing) {
        let g = splice_topology::abilene::abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
        (g, sp)
    }

    fn random_burst(
        rng: &mut StdRng,
        n: u32,
        k: usize,
        len: usize,
    ) -> Vec<(u32, u32, ForwardingBits)> {
        (0..len)
            .map(|_| {
                let src = rng.gen_range(0..n);
                let dst = rng.gen_range(0..n);
                let hops: Vec<u8> = (0..rng.gen_range(0..6))
                    .map(|_| rng.gen_range(0..k) as u8)
                    .collect();
                (src, dst, ForwardingBits::from_hops(&hops, k))
            })
            .collect()
    }

    /// Batch and scalar engines must agree packet for packet — class,
    /// hop count, endpoint, blamed slice, and full path digest — across
    /// masks, header shapes, and both exhaustion policies.
    #[test]
    fn burst_matches_scalar_packet_for_packet() {
        let (g, sp) = setup(4, 21);
        let mut rng = StdRng::seed_from_u64(99);
        for exhausted in [
            ExhaustedPolicy::StayInCurrent,
            ExhaustedPolicy::HashFallback,
        ] {
            let opts = ForwarderOptions {
                exhausted,
                ..Default::default()
            };
            let mut batch = BatchForwarder::new(opts);
            for mask in [
                EdgeMask::all_up(g.edge_count()),
                EdgeMask::from_failed(g.edge_count(), &[EdgeId(1), EdgeId(7)]),
            ] {
                let pkts = random_burst(&mut rng, g.node_count() as u32, sp.k(), 500);
                let got = batch.forward_burst(sp.arena(), &mask, &pkts).to_vec();
                for (i, &(s, d, h)) in pkts.iter().enumerate() {
                    let want = WalkOutcome::from_outcome(&scalar_walk(
                        sp.arena(),
                        &mask,
                        NodeId(s),
                        NodeId(d),
                        h,
                        &opts,
                    ));
                    assert_eq!(got[i], want, "pkt {i}: {s}->{d} ({exhausted:?})");
                }
            }
        }
    }

    /// src == dst lanes deliver with zero hops and an empty digest.
    #[test]
    fn self_addressed_packets_deliver_immediately() {
        let (g, sp) = setup(4, 21);
        let mask = EdgeMask::all_up(g.edge_count());
        let mut batch = BatchForwarder::new(ForwarderOptions::default());
        let pkts = vec![(3, 3, ForwardingBits::empty(sp.k()))];
        let out = batch.forward_burst(sp.arena(), &mask, &pkts);
        assert_eq!(out[0].class, WalkClass::Delivered);
        assert_eq!(out[0].hops, 0);
        assert_eq!(out[0].last, 3);
        assert_eq!(out[0].path_hash, PathHasher::new().finish());
    }

    /// Small TTLs cut off exactly where the scalar walk does (TTL beats
    /// arrival on the final hop, by the shared after-move check order).
    #[test]
    fn ttl_cutoff_matches_scalar() {
        let (g, sp) = setup(4, 21);
        let mask = EdgeMask::all_up(g.edge_count());
        for ttl in [0usize, 1, 2, 3] {
            let opts = ForwarderOptions {
                ttl,
                ..Default::default()
            };
            let mut batch = BatchForwarder::new(opts);
            let pkts: Vec<_> = (1..g.node_count() as u32)
                .map(|d| (0u32, d, ForwardingBits::stay_in_slice(0, sp.k())))
                .collect();
            let got = batch.forward_burst(sp.arena(), &mask, &pkts).to_vec();
            for (i, &(s, d, h)) in pkts.iter().enumerate() {
                let want = WalkOutcome::from_outcome(&scalar_walk(
                    sp.arena(),
                    &mask,
                    NodeId(s),
                    NodeId(d),
                    h,
                    &opts,
                ));
                assert_eq!(got[i], want, "ttl={ttl} pkt {i}");
            }
        }
    }

    /// Satellite regression: a recycled lane must not inherit loop
    /// stamps from an earlier burst. Burst 1 drives lane 0 into marking
    /// `(node, slice)` states with an exhausted header; burst 2 reuses
    /// the lane for a walk through those same states, which must NOT be
    /// misdiagnosed as a persistent loop.
    #[test]
    fn recycled_lane_never_inherits_stale_stamp() {
        let (g, sp) = setup(4, 21);
        let mask = EdgeMask::all_up(g.edge_count());
        let opts = ForwarderOptions::default();
        let mut batch = BatchForwarder::new(opts);

        // Burst 1: exhausted header, so every hop marks its (node, slice)
        // state in lane 0's stamp table.
        let p1 = vec![(0u32, 10u32, ForwardingBits::empty(sp.k()))];
        let first = batch.forward_burst(sp.arena(), &mask, &p1)[0];
        assert!(first.hops > 0, "walk must mark at least one state");

        // Burst 2: the very same packet in the very same lane. With stale
        // stamps surviving, hop 1 would revisit a marked state and
        // misreport PersistentLoop; the epoch bump makes it a fresh walk.
        let second = batch.forward_burst(sp.arena(), &mask, &p1)[0];
        assert_eq!(second, first, "recycled lane must walk identically");
        assert_eq!(
            second,
            WalkOutcome::from_outcome(&scalar_walk(
                sp.arena(),
                &mask,
                NodeId(0),
                NodeId(10),
                ForwardingBits::empty(sp.k()),
                &opts,
            ))
        );
    }

    /// The same stamp-staleness property, directly on the pool.
    #[test]
    fn lane_stamps_reset_on_begin() {
        let mut st = LaneStamps::new();
        st.begin(8);
        assert!(!st.seen_or_mark(3));
        assert!(st.seen_or_mark(3), "second visit in one use is seen");
        st.begin(8);
        assert!(!st.seen_or_mark(3), "begin() must invalidate old marks");
        // Growth keeps old marks dead too.
        st.begin(16);
        assert!(!st.seen_or_mark(3));
        assert!(!st.seen_or_mark(15));
    }

    /// Stats fold every outcome class and merge across instances.
    #[test]
    fn stats_account_for_every_packet() {
        let (g, sp) = setup(4, 21);
        let mut rng = StdRng::seed_from_u64(5);
        let mask = EdgeMask::from_failed(g.edge_count(), &[EdgeId(0), EdgeId(3), EdgeId(9)]);
        let mut batch = BatchForwarder::new(ForwarderOptions::default());
        let pkts = random_burst(&mut rng, g.node_count() as u32, sp.k(), 300);
        batch.forward_burst(sp.arena(), &mask, &pkts);
        let s = *batch.stats();
        assert_eq!(s.packets, 300);
        assert_eq!(
            s.delivered + s.dead_end + s.link_down + s.persistent_loop + s.ttl_exceeded,
            300
        );
        let mut merged = BatchStats::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.packets, 600);
        assert_eq!(merged.hops, 2 * s.hops);
    }
}
