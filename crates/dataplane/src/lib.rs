//! # splice-dataplane
//!
//! A packet-level data plane for path splicing.
//!
//! `splice-core` forwards abstract "packets" (just `(src, dst, header)`
//! triples); this crate runs the same Algorithm 1 over *wire-encoded*
//! packets and router objects, the way the paper's §3.2 describes the
//! mechanism deploying: a shim header between the network and transport
//! headers, routers that read and shift the forwarding bits, and legacy
//! routers that ignore the shim entirely and forward on the destination
//! address.
//!
//! * [`packet`] — the wire format: a compact IPv4-like network header, the
//!   splicing shim, and an opaque payload (`bytes`-backed).
//! * [`router`] — one router: k FIBs plus the per-packet pipeline
//!   (parse → pick slice → look up → TTL → re-serialize). Routers can be
//!   configured splicing-capable or legacy, and with local network-based
//!   recovery on or off.
//! * [`network`] — a simulated network of routers and links with failure
//!   injection (including mid-flight flaps) and full delivery traces.
//! * [`walk`] — the shared walk-outcome shape every forwarding engine
//!   reduces to ([`WalkOutcome`]), plus the one-at-a-time scalar
//!   reference walk the batch engine is measured against.
//! * [`batch`] — the struct-of-arrays packet-burst engine
//!   ([`BatchForwarder`]): parallel per-packet lanes over one FIB
//!   snapshot, pooled loop-stamp tables, no per-packet allocation.
//! * [`shard`] — per-core sharded batch workers on crossbeam scoped
//!   threads: the deterministic batch runner ([`run_sharded`]) fed
//!   per-`(shard, burst)` and merged deterministically, and the live
//!   daemon runner ([`run_live`]) whose workers subscribe to a
//!   [`SnapshotHub`](splice_routing::SnapshotHub) and follow published
//!   epochs until a stop flag is raised.
//! * [`telemetry`] — the aggregate counter set networks report into
//!   ([`NetTelemetry`]), batch-forwarding throughput/latency metrics
//!   ([`ForwardTelemetry`]), and the JSONL serialization of packet
//!   walks.

pub mod batch;
pub mod network;
pub mod packet;
pub mod router;
pub mod shard;
pub mod telemetry;
pub mod walk;

pub use batch::{BatchForwarder, BatchStats, LaneStamps};
pub use network::{DeliveryReport, LinkEvent, RouterStats, SimNetwork};
pub use packet::{Packet, SPLICE_PROTO};
pub use router::{Router, RouterAction, RouterConfig};
pub use shard::{
    merged_checksum, run_live, run_sharded, LiveShardReport, RotatingSnapshots, ShardReport,
    SnapshotSource,
};
pub use telemetry::{drop_reason_label, report_to_json, ForwardTelemetry, NetTelemetry};
pub use walk::{
    fold_outcomes_checksum, outcomes_checksum, scalar_walk, PathHasher, WalkClass, WalkOutcome,
    NO_SLICE,
};
