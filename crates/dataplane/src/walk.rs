//! Shared walk-outcome types for every forwarding engine, plus the
//! one-at-a-time scalar reference walk.
//!
//! Three engines walk packets over the spliced-FIB arena: the scalar
//! [`scalar_walk`] (and [`Router::forward`](crate::Router::forward),
//! which delegates to it), the struct-of-arrays
//! [`BatchForwarder`](crate::BatchForwarder), and the testkit's naive
//! oracle walker. For a differential oracle to compare them cheaply,
//! each reduces a walk to the same fixed-size [`WalkOutcome`]: the
//! outcome class, hop count, final node, blamed slice, and an FNV-1a
//! digest of the full `(node, slice, edge)` step sequence. Two walks
//! agree exactly when their outcomes are equal — path included, because
//! the path is hashed, not stored.
//!
//! The scalar walk mirrors `Forwarder::forward` (splice-core) statement
//! for statement — initial slice `Hash(src, dst)`, per-hop header read,
//! `StayInCurrent` on exhaustion, persistent-loop detection by
//! exhausted-(node, slice) revisit, hop budget checked after moving —
//! but reads the `SpliceFib` arena directly, so it is the baseline the
//! batch engine's speedup is measured against: identical semantics, one
//! packet at a time, with the per-packet trace and hash-set allocations
//! the batch engine exists to avoid.

use splice_core::forwarding::{
    ExhaustedPolicy, ForwarderOptions, ForwardingOutcome, Trace, TraceStep,
};
use splice_core::hash::slice_for_flow;
use splice_core::header::ForwardingBits;
use splice_graph::{EdgeMask, NodeId};
use splice_routing::SpliceFib;
use std::collections::HashSet;

/// How a walk ended — `ForwardingOutcome` without the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WalkClass {
    /// Reached the destination.
    Delivered = 0,
    /// The selected slice had no FIB entry at the current node.
    DeadEnd = 1,
    /// The selected slice's next-hop link is failed.
    LinkDown = 2,
    /// Header exhausted and a (node, slice) state revisited: the walk is
    /// deterministically periodic.
    PersistentLoop = 3,
    /// Hop budget exhausted.
    TtlExceeded = 4,
}

impl WalkClass {
    /// Stable label for tables, CSV columns, and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            WalkClass::Delivered => "delivered",
            WalkClass::DeadEnd => "dead_end",
            WalkClass::LinkDown => "link_down",
            WalkClass::PersistentLoop => "persistent_loop",
            WalkClass::TtlExceeded => "ttl_exceeded",
        }
    }
}

/// Sentinel for [`WalkOutcome::slice`] when no slice is blamed.
pub const NO_SLICE: u32 = u32::MAX;

/// A fixed-size, allocation-free walk result, identical across engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Why the walk ended.
    pub class: WalkClass,
    /// Hops actually taken (edges crossed).
    pub hops: u32,
    /// Node the walk ended at.
    pub last: u32,
    /// Slice blamed by [`WalkClass::LinkDown`]; [`NO_SLICE`] otherwise.
    pub slice: u32,
    /// FNV-1a over the `(node, slice, edge)` step sequence.
    pub path_hash: u64,
}

impl WalkOutcome {
    /// One-line comparison key for divergence reports.
    pub fn signature(&self) -> String {
        format!(
            "{} hops={} last={} slice={} path={:016x}",
            self.class.label(),
            self.hops,
            self.last,
            if self.slice == NO_SLICE {
                "-".to_string()
            } else {
                self.slice.to_string()
            },
            self.path_hash
        )
    }

    /// Collapse a splice-core [`ForwardingOutcome`] to the shared shape,
    /// hashing its trace with the same digest every engine uses.
    pub fn from_outcome(out: &ForwardingOutcome) -> WalkOutcome {
        use ForwardingOutcome as O;
        let (class, slice) = match out {
            O::Delivered(_) => (WalkClass::Delivered, NO_SLICE),
            O::DeadEnd(_) => (WalkClass::DeadEnd, NO_SLICE),
            O::LinkDown { slice, .. } => (WalkClass::LinkDown, *slice as u32),
            O::PersistentLoop(_) => (WalkClass::PersistentLoop, NO_SLICE),
            O::TtlExceeded(_) => (WalkClass::TtlExceeded, NO_SLICE),
        };
        let trace = out.trace();
        let mut h = PathHasher::new();
        for s in &trace.steps {
            h.step(s.node.0, s.slice as u32, s.edge.0);
        }
        WalkOutcome {
            class,
            hops: trace.steps.len() as u32,
            last: trace.last.0,
            slice,
            path_hash: h.finish(),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a-style digest over `(node, slice, edge)` hop
/// triples: the one path digest every engine computes, so full-path
/// agreement can be checked without any engine recording its path.
///
/// The fold runs word-at-a-time — two xor-multiply rounds per hop over
/// `node | slice << 32` and `edge` — rather than byte-at-a-time: the
/// digest sits on the batch engine's per-hop critical path, and a
/// 24-round multiply chain per hop would cost more than the FIB lookup
/// it rides along with. Collision resistance is equivalent for this
/// use (diffing two walks of the same flow), and every engine shares
/// the one implementation, so agreement checks are unaffected.
#[derive(Clone, Copy, Debug)]
pub struct PathHasher(u64);

impl Default for PathHasher {
    fn default() -> Self {
        PathHasher::new()
    }
}

impl PathHasher {
    /// A fresh digest (the FNV offset basis).
    #[inline]
    pub fn new() -> PathHasher {
        PathHasher(FNV_OFFSET)
    }

    /// Absorb one hop: two word rounds.
    #[inline]
    pub fn step(&mut self, node: u32, slice: u32, edge: u32) {
        let mut h = self.0;
        h = (h ^ ((node as u64) | ((slice as u64) << 32))).wrapping_mul(FNV_PRIME);
        h = (h ^ (edge as u64)).wrapping_mul(FNV_PRIME);
        self.0 = h;
    }

    /// The digest so far.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// FNV-1a-style word-fold digest over a sequence of walk outcomes,
/// order-sensitive. Two engines that walked the same packets over the
/// same FIB snapshots agree on this checksum exactly when they agree on
/// every outcome — the number CI diffs between the batch and scalar
/// paths.
pub fn outcomes_checksum(outs: &[WalkOutcome]) -> u64 {
    fold_outcomes_checksum(FNV_OFFSET, outs)
}

/// Fold one outcome batch into a running checksum (for streaming use:
/// seed with [`outcomes_checksum`] of an empty slice, i.e. the offset
/// basis, then fold burst after burst).
pub fn fold_outcomes_checksum(mut h: u64, outs: &[WalkOutcome]) -> u64 {
    let mut eat = |v: u64| {
        h = (h ^ v).wrapping_mul(FNV_PRIME);
    };
    for o in outs {
        eat(o.class as u64);
        eat(o.hops as u64);
        eat(o.last as u64);
        eat(o.slice as u64);
        eat(o.path_hash);
    }
    h
}

/// Walk one packet over the arena, one hop at a time, mirroring
/// `Forwarder::forward`'s semantics statement for statement — including
/// its per-packet costs: a `Trace` whose step `Vec` grows hop by hop and
/// a fresh `HashSet` for exhausted-state loop detection. This is the
/// honest one-at-a-time scalar baseline (BENCH_fib.json's ~0.5 µs/hop
/// path): the batch engine exists to shed exactly these allocations.
pub fn scalar_walk(
    fib: &SpliceFib,
    mask: &EdgeMask,
    src: NodeId,
    dst: NodeId,
    mut header: ForwardingBits,
    opts: &ForwarderOptions,
) -> ForwardingOutcome {
    let k = fib.k();
    let mut current_slice = slice_for_flow(src, dst, k);
    let mut steps = Vec::new();
    let mut at = src;
    let mut exhausted_states: HashSet<(NodeId, usize)> = HashSet::new();

    macro_rules! trace {
        () => {
            Trace {
                src,
                dst,
                steps,
                last: at,
            }
        };
    }

    while at != dst {
        match header.read_and_shift(k) {
            Some(s) => current_slice = s,
            None => match opts.exhausted {
                ExhaustedPolicy::StayInCurrent => {}
                ExhaustedPolicy::HashFallback => {
                    current_slice = slice_for_flow(src, dst, k);
                }
            },
        }
        if header.is_exhausted() && !exhausted_states.insert((at, current_slice)) {
            return ForwardingOutcome::PersistentLoop(trace!());
        }
        let Some((next, edge)) = fib.lookup(current_slice, at, dst) else {
            return ForwardingOutcome::DeadEnd(trace!());
        };
        if mask.is_failed(edge) {
            return ForwardingOutcome::LinkDown {
                trace: trace!(),
                slice: current_slice,
            };
        }
        steps.push(TraceStep {
            node: at,
            slice: current_slice,
            edge,
        });
        at = next;
        if steps.len() > opts.ttl {
            return ForwardingOutcome::TtlExceeded(trace!());
        }
    }
    ForwardingOutcome::Delivered(trace!())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::forwarding::Forwarder;
    use splice_core::slices::{Splicing, SplicingConfig};
    use splice_graph::EdgeId;

    fn setup() -> (splice_graph::Graph, Splicing) {
        let g = splice_topology::abilene::abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 21);
        (g, sp)
    }

    /// The scalar arena walk must agree with `Forwarder::forward` on
    /// every pair, header shape, and failure state — outcome variant,
    /// full trace included.
    #[test]
    fn scalar_walk_matches_core_forwarder() {
        let (g, sp) = setup();
        let opts = ForwarderOptions::default();
        for mask in [
            EdgeMask::all_up(g.edge_count()),
            EdgeMask::from_failed(g.edge_count(), &[EdgeId(0), EdgeId(5)]),
        ] {
            let fwd = Forwarder::new(&sp, &g, &mask);
            for hops in [vec![], vec![1], vec![2, 0, 1], vec![3, 3, 1, 0, 2]] {
                for s in g.nodes() {
                    for t in g.nodes() {
                        if s == t {
                            continue;
                        }
                        let h = ForwardingBits::from_hops(&hops, sp.k());
                        let core = fwd.forward(s, t, h, &opts);
                        let ours = scalar_walk(sp.arena(), &mask, s, t, h, &opts);
                        assert_eq!(core, ours, "{s:?}->{t:?} hops={hops:?}");
                        assert_eq!(
                            WalkOutcome::from_outcome(&core),
                            WalkOutcome::from_outcome(&ours)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ttl_matches_core_cutoff() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        let opts = ForwarderOptions {
            ttl: 1,
            ..Default::default()
        };
        let h = ForwardingBits::stay_in_slice(0, sp.k());
        let core = fwd.forward(NodeId(0), NodeId(10), h, &opts);
        assert!(matches!(core, ForwardingOutcome::TtlExceeded(_)));
        let ours = scalar_walk(sp.arena(), &mask, NodeId(0), NodeId(10), h, &opts);
        assert_eq!(core, ours);
        assert_eq!(
            WalkOutcome::from_outcome(&ours).class,
            WalkClass::TtlExceeded
        );
    }

    #[test]
    fn checksum_is_order_sensitive_and_foldable() {
        let a = WalkOutcome {
            class: WalkClass::Delivered,
            hops: 3,
            last: 7,
            slice: NO_SLICE,
            path_hash: 42,
        };
        let b = WalkOutcome {
            class: WalkClass::DeadEnd,
            hops: 1,
            last: 2,
            slice: NO_SLICE,
            path_hash: 43,
        };
        assert_ne!(outcomes_checksum(&[a, b]), outcomes_checksum(&[b, a]));
        let whole = outcomes_checksum(&[a, b]);
        let folded =
            fold_outcomes_checksum(fold_outcomes_checksum(outcomes_checksum(&[]), &[a]), &[b]);
        assert_eq!(whole, folded);
    }

    #[test]
    fn signatures_render_the_blamed_slice() {
        let o = WalkOutcome {
            class: WalkClass::LinkDown,
            hops: 2,
            last: 5,
            slice: 3,
            path_hash: 1,
        };
        assert!(o.signature().contains("link_down"));
        assert!(o.signature().contains("slice=3"));
    }
}
