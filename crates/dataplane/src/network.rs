//! A simulated network of routers with failure injection.
//!
//! [`SimNetwork`] wires one [`Router`] per topology node and moves packets
//! hop by hop, accumulating per-link latency and a full trace. Links can
//! be failed up front or flapped mid-flight ([`LinkEvent`]), reproducing
//! the fault-injection style of the smoltcp examples this workspace's
//! coding guides recommend.

use crate::packet::Packet;
use crate::router::{DropReason, Router, RouterAction, RouterConfig};
use crate::telemetry::{drop_reason_label, report_to_json, NetTelemetry};
use splice_core::slices::Splicing;
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};
use splice_telemetry::{FlightEvent, FlightRecorder, TraceSink};

/// A scheduled link state change during a packet's flight:
/// before hop `at_hop` is processed, the link goes down or up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkEvent {
    /// Hop index before which the event fires (0 = before the first hop).
    pub at_hop: usize,
    /// Affected link.
    pub edge: EdgeId,
    /// New state: `true` = up, `false` = down.
    pub up: bool,
}

/// The result of injecting one packet.
#[derive(Clone, Debug, PartialEq)]
pub struct DeliveryReport {
    /// Whether the packet reached its destination.
    pub delivered: bool,
    /// Nodes visited, starting at the source.
    pub path: Vec<NodeId>,
    /// Slice used at each hop.
    pub slices: Vec<usize>,
    /// Sum of link latencies along the walk (ms).
    pub latency_ms: f64,
    /// Drop reason when not delivered.
    pub drop: Option<DropReason>,
    /// The packet as it arrived (payload intact, bits consumed), when
    /// delivered.
    pub final_packet: Option<Packet>,
}

/// Per-router operational counters, accumulated across injected packets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Packets this router forwarded onward.
    pub forwarded: u64,
    /// Packets delivered to this router as destination.
    pub delivered: u64,
    /// Packets dropped here (any reason).
    pub dropped: u64,
    /// Forwards where local recovery deflected the packet into an
    /// alternate slice because its chosen next-hop link was down.
    pub deflections: u64,
}

/// A network of splicing routers over one topology.
pub struct SimNetwork {
    routers: Vec<Router>,
    graph: Graph,
    latencies: Vec<f64>,
    link_state: EdgeMask,
    stats: Vec<RouterStats>,
    telemetry: Option<NetTelemetry>,
    trace: Option<TraceSink>,
    flight: Option<FlightRecorder>,
}

impl SimNetwork {
    /// Build a network: one router per node, FIBs from `splicing`,
    /// identical `config` everywhere. `latencies` is per-edge one-way
    /// delay in ms (pass the graph's base weights when latency is not
    /// under study).
    pub fn new(
        graph: Graph,
        splicing: &Splicing,
        latencies: Vec<f64>,
        config: RouterConfig,
    ) -> SimNetwork {
        assert_eq!(latencies.len(), graph.edge_count());
        let routers = graph
            .nodes()
            .map(|n| Router::from_splicing(n, splicing, config))
            .collect();
        let link_state = EdgeMask::all_up(graph.edge_count());
        let stats = vec![RouterStats::default(); graph.node_count()];
        SimNetwork {
            routers,
            graph,
            latencies,
            link_state,
            stats,
            telemetry: None,
            trace: None,
            flight: None,
        }
    }

    /// Build with per-router configs (e.g. a partial deployment where only
    /// some routers speak splicing).
    pub fn with_router_configs(
        graph: Graph,
        splicing: &Splicing,
        latencies: Vec<f64>,
        configs: &[RouterConfig],
    ) -> SimNetwork {
        assert_eq!(configs.len(), graph.node_count());
        let routers = graph
            .nodes()
            .map(|n| Router::from_splicing(n, splicing, configs[n.index()]))
            .collect();
        let link_state = EdgeMask::all_up(graph.edge_count());
        let stats = vec![RouterStats::default(); graph.node_count()];
        SimNetwork {
            routers,
            graph,
            latencies,
            link_state,
            stats,
            telemetry: None,
            trace: None,
            flight: None,
        }
    }

    /// Report every forwarding event into a shared counter set (in
    /// addition to the per-router [`RouterStats`], which always run).
    pub fn set_telemetry(&mut self, telemetry: NetTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Emit every completed packet walk as one JSON line on `sink`.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Record walk anomalies — drops and revisited-node loops — into a
    /// flight recorder. Clean deliveries stay out of the recorder so its
    /// ring holds the interesting tail, not the happy path.
    pub fn set_flight_recorder(&mut self, flight: FlightRecorder) {
        self.flight = Some(flight);
    }

    /// Per-router operational counters accumulated so far.
    pub fn stats(&self) -> &[RouterStats] {
        &self.stats
    }

    /// Reset all counters to zero.
    pub fn reset_stats(&mut self) {
        self.stats
            .iter_mut()
            .for_each(|s| *s = RouterStats::default());
    }

    /// Take a link down.
    pub fn fail_link(&mut self, e: EdgeId) {
        self.link_state.fail(e);
    }

    /// Bring a link back up.
    pub fn restore_link(&mut self, e: EdgeId) {
        self.link_state.restore(e);
    }

    /// Current link state.
    pub fn link_state(&self) -> &EdgeMask {
        &self.link_state
    }

    /// The topology this network runs on.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Inject `packet` at its source and walk it to completion.
    pub fn inject(&mut self, packet: Packet) -> DeliveryReport {
        self.inject_with_events(packet, &[])
    }

    /// Inject with scheduled mid-flight link events.
    pub fn inject_with_events(&mut self, packet: Packet, events: &[LinkEvent]) -> DeliveryReport {
        let (src, dst) = (packet.src, packet.dst);
        let mut at = packet.src;
        let mut current_slice = 0usize;
        let mut path = vec![at];
        let mut slices = Vec::new();
        let mut latency_ms = 0.0;
        let mut pkt = packet;
        let mut hop = 0usize;

        loop {
            for ev in events.iter().filter(|ev| ev.at_hop == hop) {
                if ev.up {
                    self.link_state.restore(ev.edge);
                } else {
                    self.link_state.fail(ev.edge);
                }
            }
            let action = self.routers[at.index()].process(pkt, current_slice, &self.link_state);
            match action {
                RouterAction::Deliver(p) => {
                    self.stats[at.index()].delivered += 1;
                    if let Some(tel) = &self.telemetry {
                        tel.delivered.inc();
                    }
                    return self.finish(
                        src,
                        dst,
                        DeliveryReport {
                            delivered: true,
                            path,
                            slices,
                            latency_ms,
                            drop: None,
                            final_packet: Some(p),
                        },
                    );
                }
                RouterAction::Drop(reason) => {
                    self.stats[at.index()].dropped += 1;
                    if let Some(tel) = &self.telemetry {
                        tel.drop_counter(&reason).inc();
                    }
                    return self.finish(
                        src,
                        dst,
                        DeliveryReport {
                            delivered: false,
                            path,
                            slices,
                            latency_ms,
                            drop: Some(reason),
                            final_packet: None,
                        },
                    );
                }
                RouterAction::Forward {
                    edge,
                    next,
                    packet: p,
                    slice,
                    deflected,
                } => {
                    debug_assert!(self.link_state.is_up(edge));
                    self.stats[at.index()].forwarded += 1;
                    if deflected {
                        self.stats[at.index()].deflections += 1;
                    }
                    if let Some(tel) = &self.telemetry {
                        tel.forwarded.inc();
                        if deflected {
                            tel.deflections.inc();
                        }
                        // Same semantics as splice-core's Trace: a switch is
                        // an adjacent pair of hops in different slices.
                        if slices.last().is_some_and(|&prev| prev != slice) {
                            tel.slice_switches.inc();
                        }
                    }
                    latency_ms += self.latencies[edge.index()];
                    slices.push(slice);
                    current_slice = slice;
                    at = next;
                    path.push(at);
                    pkt = p;
                    hop += 1;
                }
            }
        }
    }

    /// Emit the completed walk to the trace sink (if any), record walk
    /// anomalies in the flight recorder (if any), and hand the report
    /// back to the caller.
    fn finish(&self, src: NodeId, dst: NodeId, report: DeliveryReport) -> DeliveryReport {
        if let Some(sink) = &self.trace {
            sink.emit(&report_to_json(&report));
        }
        if let Some(flight) = &self.flight {
            let (src, dst) = (src.0 as u64, dst.0 as u64);
            let hops = report.path.len().saturating_sub(1) as u64;
            if let Some(reason) = &report.drop {
                flight.record(
                    FlightEvent::new("walk", drop_reason_label(reason))
                        .field("src", src)
                        .field("dst", dst)
                        .field("hops", hops),
                );
            }
            if let Some(node) = first_revisited(&report.path) {
                flight.record(
                    FlightEvent::new("walk", "loop")
                        .field("node", node.0 as u64)
                        .field("src", src)
                        .field("dst", dst)
                        .field("hops", hops),
                );
            }
        }
        report
    }
}

/// The first node a walk visits twice, if any — the anomaly marker for
/// loopy walks (deflection ping-pong, transient micro-loops).
fn first_revisited(path: &[NodeId]) -> Option<NodeId> {
    let mut seen = std::collections::HashSet::with_capacity(path.len());
    path.iter().find(|n| !seen.insert(**n)).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splice_core::header::ForwardingBits;
    use splice_core::prelude::*;
    use splice_topology::abilene::abilene;

    fn setup(recovery: bool) -> (splice_topology::Topology, Splicing, SimNetwork) {
        let topo = abilene();
        let g = topo.graph();
        // The deflection tests fail slice 0's first hop for 0 -> 10 and
        // expect in-network recovery to get through, so the slices must
        // diverge at node 0 and 10 must stay spliced-reachable under that
        // failure. Seed 3 qualifies under rand 0.8's StdRng stream; the
        // scan keeps the tests pinned to the property, not the stream.
        let sp = (3..200)
            .map(|seed| Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), seed))
            .find(|sp| {
                let first_hops: std::collections::HashSet<_> = (0..sp.k())
                    .filter_map(|s| sp.next_hop(s, NodeId(0), NodeId(10)))
                    .collect();
                first_hops.len() >= 2
                    && first_hops.iter().all(|&(_, e)| {
                        let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
                        sp.reachable_to(NodeId(10), sp.k(), &mask)[0]
                    })
            })
            .expect("some seed in 3..200 must diverge at node 0");
        let net = SimNetwork::new(
            g.clone(),
            &sp,
            topo.latencies(),
            RouterConfig {
                splicing_enabled: true,
                network_recovery: recovery,
            },
        );
        (topo, sp, net)
    }

    fn spliced(src: u32, dst: u32, k: usize) -> Packet {
        Packet::spliced(
            NodeId(src),
            NodeId(dst),
            64,
            ForwardingBits::stay_in_slice(0, k),
            Bytes::from_static(b"payload"),
        )
    }

    #[test]
    fn delivers_end_to_end_with_latency() {
        let (_, sp, mut net) = setup(false);
        let report = net.inject(spliced(0, 10, sp.k()));
        assert!(report.delivered);
        assert_eq!(report.path[0], NodeId(0));
        assert_eq!(*report.path.last().unwrap(), NodeId(10));
        assert!(report.latency_ms > 0.0);
        assert_eq!(
            report.final_packet.unwrap().payload,
            Bytes::from_static(b"payload")
        );
    }

    #[test]
    fn wire_walk_matches_abstract_forwarder() {
        // The packet-level network and splice-core's abstract Forwarder
        // must trace identical paths for identical headers.
        let (topo, sp, mut net) = setup(false);
        let g = topo.graph();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        for (s, t) in [(0u32, 10u32), (3, 8), (7, 2), (10, 0)] {
            let report = net.inject(spliced(s, t, sp.k()));
            let abstract_out = fwd.forward(
                NodeId(s),
                NodeId(t),
                ForwardingBits::stay_in_slice(0, sp.k()),
                &ForwarderOptions::default(),
            );
            let trace = match abstract_out {
                ForwardingOutcome::Delivered(tr) => tr,
                other => panic!("abstract forwarder failed: {other:?}"),
            };
            let abstract_path: Vec<NodeId> = std::iter::once(NodeId(s))
                .chain(trace.steps.iter().skip(1).map(|st| st.node))
                .chain(std::iter::once(NodeId(t)))
                .collect();
            assert_eq!(report.path, abstract_path, "paths diverge for {s}->{t}");
        }
    }

    #[test]
    fn failed_link_drops_without_recovery() {
        let (_, sp, mut net) = setup(false);
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        net.fail_link(edge);
        let report = net.inject(spliced(0, 10, sp.k()));
        assert!(!report.delivered);
        assert_eq!(report.drop, Some(DropReason::LinkDown));
    }

    #[test]
    fn network_recovery_reroutes_packets() {
        let (_, sp, mut net) = setup(true);
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        net.fail_link(edge);
        let report = net.inject(spliced(0, 10, sp.k()));
        assert!(report.delivered, "{report:?}");
        assert!(report.slices.iter().any(|&s| s != 0), "must have deflected");
    }

    #[test]
    fn mid_flight_failure_and_restore() {
        let (_, sp, mut net) = setup(true);
        // Walk the slice-0 path 0 -> 10 and pick a hop whose router has an
        // alternate-slice next hop, then kill the slice-0 link right when
        // the packet arrives there: local recovery must deflect and deliver.
        let report0 = net.inject(spliced(0, 10, sp.k()));
        assert!(report0.delivered);
        let dst = NodeId(10);
        let deflectable = report0.path[..report0.path.len() - 1]
            .iter()
            .enumerate()
            .find_map(|(hop, &u)| {
                let (nh0, e0) = sp.next_hop(0, u, dst)?;
                let diverges =
                    (1..sp.k()).any(|s| sp.next_hop(s, u, dst).is_some_and(|(nh, _)| nh != nh0));
                diverges.then_some((hop, e0))
            });
        let (hop, edge) = deflectable.expect("some hop on the path must be deflectable");
        let events = [LinkEvent {
            at_hop: hop,
            edge,
            up: false,
        }];
        let report = net.inject_with_events(spliced(0, 10, sp.k()), &events);
        assert!(report.delivered, "{report:?}");
        assert!(report.slices.iter().any(|&s| s != 0), "must have deflected");
        // The network keeps the late state: restore works.
        net.restore_link(edge);
        assert!(net.link_state().is_up(edge));
    }

    #[test]
    fn ttl_limits_hops() {
        let (_, sp, mut net) = setup(false);
        let mut p = spliced(0, 10, sp.k());
        p.ttl = 1;
        let report = net.inject(p);
        assert!(!report.delivered);
        assert_eq!(report.drop, Some(DropReason::TtlExpired));
        assert!(report.path.len() <= 3);
    }

    #[test]
    fn partial_deployment_still_delivers() {
        // Half the routers are legacy: spliced packets still flow, they
        // just get less path choice (the §3.2 incremental story).
        let topo = abilene();
        let g = topo.graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 3);
        let configs: Vec<RouterConfig> = (0..g.node_count())
            .map(|i| RouterConfig {
                splicing_enabled: i % 2 == 0,
                network_recovery: false,
            })
            .collect();
        let mut net = SimNetwork::with_router_configs(g, &sp, topo.latencies(), &configs);
        let report = net.inject(spliced(0, 10, sp.k()));
        assert!(report.delivered, "{report:?}");
    }

    #[test]
    fn stats_account_for_every_hop() {
        let (_, sp, mut net) = setup(true);
        let report = net.inject(spliced(0, 10, sp.k()));
        assert!(report.delivered);
        let stats = net.stats();
        let forwarded: u64 = stats.iter().map(|s| s.forwarded).sum();
        assert_eq!(forwarded as usize, report.path.len() - 1);
        assert_eq!(stats[10].delivered, 1);
        assert_eq!(stats.iter().map(|s| s.dropped).sum::<u64>(), 0);
        // A drop lands on the right router.
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        net.fail_link(edge);
        net.reset_stats();
        // With recovery on, the first router deflects instead of dropping;
        // force a drop by cutting node 0 off entirely.
        let g = net.graph().clone();
        for &(_, e) in g.neighbors(NodeId(0)) {
            net.fail_link(e);
        }
        let report = net.inject(spliced(0, 10, sp.k()));
        assert!(!report.delivered);
        assert_eq!(net.stats()[0].dropped, 1);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let (_, sp, mut net) = setup(false);
        net.inject(spliced(0, 10, sp.k()));
        assert!(net.stats().iter().any(|s| s.forwarded > 0));
        net.reset_stats();
        assert!(net.stats().iter().all(|s| *s == RouterStats::default()));
    }

    #[test]
    fn deflections_show_as_slice_switches() {
        let (_, sp, mut net) = setup(true);
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        net.fail_link(edge);
        let report = net.inject(spliced(0, 10, sp.k()));
        assert!(report.delivered);
        let deflections: u64 = net.stats().iter().map(|s| s.deflections).sum();
        assert!(deflections >= 1, "the deflection must be counted");
        assert!(net.stats()[0].deflections >= 1, "it happened at the source");
    }

    #[test]
    fn telemetry_counters_match_router_stats() {
        use splice_telemetry::Registry;
        let (_, sp, mut net) = setup(true);
        let reg = Registry::new();
        net.set_telemetry(NetTelemetry::register(&reg));
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        net.fail_link(edge);
        let reports: Vec<_> = [(0u32, 10u32), (3, 8), (10, 0)]
            .into_iter()
            .map(|(s, t)| net.inject(spliced(s, t, sp.k())))
            .collect();
        let tel = NetTelemetry::register(&reg);
        let stats = net.stats();
        assert_eq!(
            tel.forwarded.get(),
            stats.iter().map(|s| s.forwarded).sum::<u64>()
        );
        assert_eq!(
            tel.delivered.get(),
            stats.iter().map(|s| s.delivered).sum::<u64>()
        );
        assert_eq!(
            tel.deflections.get(),
            stats.iter().map(|s| s.deflections).sum::<u64>()
        );
        assert!(tel.deflections.get() >= 1, "the failed link forces one");
        // A switch is an adjacent pair of hops in different slices, so a
        // deflection on the very first hop counts as a deflection but not
        // as a switch — compare against the exact per-walk computation.
        let expected_switches: u64 = reports
            .iter()
            .map(|r| r.slices.windows(2).filter(|w| w[0] != w[1]).count() as u64)
            .sum();
        assert_eq!(tel.slice_switches.get(), expected_switches);
    }

    #[test]
    fn trace_sink_gets_one_line_per_packet() {
        use splice_telemetry::TraceSink;
        let (_, sp, mut net) = setup(false);
        let (sink, buf) = TraceSink::in_memory();
        net.set_trace_sink(sink.clone());
        net.inject(spliced(0, 10, sp.k()));
        let (_, edge) = sp.next_hop(0, NodeId(3), NodeId(8)).unwrap();
        net.fail_link(edge);
        net.inject(spliced(3, 8, sp.k()));
        sink.flush().unwrap();
        assert_eq!(sink.line_count(), 2);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""delivered":true"#));
        assert!(lines[1].contains(r#""drop":"link_down""#));
    }

    #[test]
    fn flight_recorder_captures_drop_anomalies_only() {
        let (_, sp, mut net) = setup(false);
        let rec = FlightRecorder::new(16);
        net.set_flight_recorder(rec.clone());
        // A clean delivery records nothing.
        let report = net.inject(spliced(0, 10, sp.k()));
        assert!(report.delivered);
        assert_eq!(rec.recorded(), 0, "happy path stays out of the ring");
        // A link-down drop is an anomaly.
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        net.fail_link(edge);
        net.inject(spliced(0, 10, sp.k()));
        // So is a TTL expiry.
        net.restore_link(edge);
        let mut p = spliced(0, 10, sp.k());
        p.ttl = 1;
        net.inject(p);
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event.kind, "walk");
        assert_eq!(events[0].event.name, "link_down");
        assert_eq!(events[0].event.fields[0], ("src", 0));
        assert_eq!(events[0].event.fields[1], ("dst", 10));
        assert_eq!(events[1].event.name, "ttl_expired");
        assert!(rec.to_jsonl().contains(r#""name":"ttl_expired""#));
    }

    #[test]
    fn first_revisited_flags_loops() {
        let walk = |ids: &[u32]| ids.iter().map(|&i| NodeId(i)).collect::<Vec<_>>();
        assert_eq!(first_revisited(&walk(&[0, 3, 7, 10])), None);
        assert_eq!(first_revisited(&walk(&[0, 3, 7, 3, 10])), Some(NodeId(3)));
        assert_eq!(first_revisited(&walk(&[])), None);
    }

    #[test]
    fn latency_is_sum_of_link_latencies() {
        let (topo, sp, mut net) = setup(false);
        let g = topo.graph();
        let report = net.inject(spliced(0, 3, sp.k()));
        assert!(report.delivered);
        // Recompute: walk the path edges and sum latencies.
        let lat = topo.latencies();
        let mut expect = 0.0;
        for w in report.path.windows(2) {
            let e = g.find_edge(w[0], w[1]).unwrap();
            expect += lat[e.index()];
        }
        assert!((report.latency_ms - expect).abs() < 1e-9);
    }
}
