//! Per-core sharded batch forwarding on crossbeam scoped threads.
//!
//! [`run_sharded`] spawns one worker per shard; each owns a private
//! [`BatchForwarder`] and loops: pull a burst from the feed, load a FIB
//! snapshot from the [`SnapshotSource`], drain the burst, fold the
//! outcomes into a per-shard checksum. Workers never share mutable
//! state — only `Arc` clones of immutable arenas and atomic telemetry —
//! so the merged result is deterministic in the inputs:
//!
//! * the feed is indexed by `(shard, burst)`, so each shard's packet
//!   stream is a pure function of its own indices (the traffic crate's
//!   per-shard splitmix64 streams), not of scheduling;
//! * snapshot choice is delegated to the source: a
//!   [`RotatingSnapshots`] assigns snapshots by `(shard, burst)` index
//!   (reproducible, what the bench and oracle use), while a live
//!   [`FibCell`] source picks up whatever the control plane last
//!   published (what a daemon would run);
//! * per-shard reports are returned in shard order, and each shard's
//!   checksum folds its own outcomes in burst order.
//!
//! With a deterministic source, the concatenated per-shard checksums —
//! and [`merged_checksum`] over them — are therefore identical run to
//! run and engine to engine, which is exactly the equality the CI
//! smoke job asserts between this path and the scalar baseline.

use crate::batch::{BatchForwarder, BatchStats};
use crate::telemetry::ForwardTelemetry;
use crate::walk::{fold_outcomes_checksum, outcomes_checksum};
use splice_core::forwarding::ForwarderOptions;
use splice_core::header::ForwardingBits;
use splice_graph::EdgeMask;
use splice_routing::{FibCell, SnapshotHub, SpliceFib};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where a shard worker gets the FIB snapshot for a given burst.
pub trait SnapshotSource: Sync {
    /// The snapshot burst `burst` of shard `shard` forwards over.
    fn snapshot(&self, shard: usize, burst: u64) -> Arc<SpliceFib>;
}

/// Live source: every burst forwards over whatever the control plane
/// most recently published. Nondeterministic relative to repair timing
/// (by design); per-burst atomicity still holds because the `Arc` is
/// loaded once per burst.
impl SnapshotSource for FibCell {
    fn snapshot(&self, _shard: usize, _burst: u64) -> Arc<SpliceFib> {
        self.load()
    }
}

/// Polling live source: every burst forwards over the hub's current
/// snapshot, without subscribing. Equivalent to the [`FibCell`] source;
/// prefer [`run_live`] for long-running workers, which subscribe and
/// observe the published epoch stream explicitly.
impl SnapshotSource for SnapshotHub {
    fn snapshot(&self, _shard: usize, _burst: u64) -> Arc<SpliceFib> {
        self.load()
    }
}

/// Deterministic source: snapshot `(shard + burst) mod len` from a
/// fixed churn sequence. Every engine given the same sequence maps the
/// same burst to the same snapshot, making cross-engine checksum
/// equality meaningful under churn.
#[derive(Clone, Debug)]
pub struct RotatingSnapshots(pub Vec<Arc<SpliceFib>>);

impl SnapshotSource for RotatingSnapshots {
    fn snapshot(&self, shard: usize, burst: u64) -> Arc<SpliceFib> {
        Arc::clone(&self.0[(shard as u64 + burst) as usize % self.0.len()])
    }
}

/// One shard's merged results.
#[derive(Clone, Copy, Debug)]
pub struct ShardReport {
    /// Which shard.
    pub shard: usize,
    /// Outcome-class counters over every packet this shard walked.
    pub stats: BatchStats,
    /// FNV-1a over this shard's outcomes, in burst order.
    pub checksum: u64,
    /// Bursts drained.
    pub bursts: u64,
    /// Time spent inside `forward_burst` across this shard's bursts —
    /// the shard's forwarding busy time, excluding feed fills, snapshot
    /// loads, checksum folding, and scheduling gaps.
    pub busy_seconds: f64,
}

/// Checksum of checksums, in shard order: one number summarizing an
/// entire sharded run for cross-engine comparison.
pub fn merged_checksum(reports: &[ShardReport]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in reports {
        for byte in r.checksum.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Run `shards` batch-forwarder workers to completion.
///
/// `feed` fills the worker's reusable burst buffer for `(shard, burst)`;
/// leaving it empty ends that shard's stream. `mask` is the failure
/// state for the whole run (churn is expressed through the snapshot
/// source, which is how the repair path delivers it). `telemetry`, when
/// given, receives per-burst observations from every worker.
///
/// Reports come back in shard order regardless of scheduling.
pub fn run_sharded<S, F>(
    shards: usize,
    opts: ForwarderOptions,
    source: &S,
    mask: &EdgeMask,
    telemetry: Option<&ForwardTelemetry>,
    feed: F,
) -> Vec<ShardReport>
where
    S: SnapshotSource + ?Sized,
    F: Fn(usize, u64, &mut Vec<(u32, u32, ForwardingBits)>) + Sync,
{
    assert!(shards >= 1, "need at least one shard");
    let feed = &feed;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move |_| {
                    let mut engine = BatchForwarder::new(opts);
                    let mut buf: Vec<(u32, u32, ForwardingBits)> = Vec::new();
                    let mut checksum = outcomes_checksum(&[]);
                    let mut bursts = 0u64;
                    let mut busy = std::time::Duration::ZERO;
                    loop {
                        buf.clear();
                        feed(shard, bursts, &mut buf);
                        if buf.is_empty() {
                            break;
                        }
                        let snapshot = source.snapshot(shard, bursts);
                        let start = Instant::now();
                        let outcomes = engine.forward_burst(&snapshot, mask, &buf);
                        let elapsed = start.elapsed();
                        busy += elapsed;
                        checksum = fold_outcomes_checksum(checksum, outcomes);
                        if let Some(tel) = telemetry {
                            tel.observe_burst(outcomes, elapsed);
                        }
                        bursts += 1;
                    }
                    ShardReport {
                        shard,
                        stats: *engine.stats(),
                        checksum,
                        bursts,
                        busy_seconds: busy.as_secs_f64(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
    .expect("crossbeam scope panicked")
}

/// One live shard's results: outcome counters plus which snapshot
/// epochs the worker actually forwarded over.
#[derive(Clone, Copy, Debug)]
pub struct LiveShardReport {
    /// Which shard.
    pub shard: usize,
    /// Outcome-class counters over every packet this shard walked.
    pub stats: BatchStats,
    /// Bursts drained before the stop flag (or an empty feed) ended the
    /// stream.
    pub bursts: u64,
    /// Time spent inside `forward_burst` — the shard's busy time.
    pub busy_seconds: f64,
    /// Distinct snapshot epochs this worker forwarded over (>= 1: the
    /// primed epoch counts).
    pub epochs_seen: u64,
    /// The epoch of the last snapshot this worker forwarded over. May
    /// trail `SnapshotHub::epoch()` by publishes that landed after the
    /// worker's final refresh.
    pub final_epoch: u64,
}

/// Run `shards` batch-forwarder workers **subscribed** to a live
/// [`SnapshotHub`] until `stop` is raised (or a shard's feed runs dry).
///
/// This is the daemon-shaped dual of [`run_sharded`]: instead of being
/// handed a fixed snapshot sequence upfront, each worker owns a
/// [`SnapshotFeed`](splice_routing::SnapshotFeed) and drains it
/// latest-wins at every burst boundary, so a control plane publishing
/// repairs is picked up within one burst without ever blocking on a
/// worker. Per-burst atomicity holds as in the batch engine: the arena
/// `Arc` is pinned for the whole burst.
///
/// `mask` is the forwarding-time failure mask; under the daemon the
/// published snapshots are already repaired around failures (no route
/// crosses a failed edge), so workers typically forward with an all-up
/// mask and churn reaches them purely through epochs.
///
/// Checksums are deliberately absent from [`LiveShardReport`]: which
/// epoch a burst lands on depends on publish timing, so per-burst
/// outcome checksums are not reproducible. End-state equality is
/// asserted against the batch oracle on the *final published FIB*
/// instead (see the testkit daemon differential tests).
pub fn run_live<F>(
    shards: usize,
    opts: ForwarderOptions,
    hub: &SnapshotHub,
    mask: &EdgeMask,
    telemetry: Option<&ForwardTelemetry>,
    stop: &AtomicBool,
    feed: F,
) -> Vec<LiveShardReport>
where
    F: Fn(usize, u64, &mut Vec<(u32, u32, ForwardingBits)>) + Sync,
{
    assert!(shards >= 1, "need at least one shard");
    let feed = &feed;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move |_| {
                    let mut snapshots = hub.subscribe();
                    let mut engine = BatchForwarder::new(opts);
                    let mut buf: Vec<(u32, u32, ForwardingBits)> = Vec::new();
                    let mut bursts = 0u64;
                    let mut busy = std::time::Duration::ZERO;
                    let mut epochs_seen = 1u64;
                    let mut final_epoch = snapshots.current().epoch;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        buf.clear();
                        feed(shard, bursts, &mut buf);
                        if buf.is_empty() {
                            break;
                        }
                        let up = snapshots.refresh();
                        if up.epoch != final_epoch {
                            epochs_seen += 1;
                            final_epoch = up.epoch;
                        }
                        let snapshot = Arc::clone(&up.fib);
                        let start = Instant::now();
                        let outcomes = engine.forward_burst(&snapshot, mask, &buf);
                        let elapsed = start.elapsed();
                        busy += elapsed;
                        if let Some(tel) = telemetry {
                            tel.observe_burst(outcomes, elapsed);
                        }
                        bursts += 1;
                    }
                    LiveShardReport {
                        shard,
                        stats: *engine.stats(),
                        bursts,
                        busy_seconds: busy.as_secs_f64(),
                        epochs_seen,
                        final_epoch,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("live shard worker panicked"))
            .collect()
    })
    .expect("crossbeam scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::WalkOutcome;
    use splice_core::slices::{Splicing, SplicingConfig};
    use splice_telemetry::Registry;

    fn setup() -> (splice_graph::Graph, Splicing) {
        let g = splice_topology::abilene::abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 21);
        (g, sp)
    }

    /// A fixed feed: `bursts` bursts per shard of every (src, dst) pair,
    /// header pinned by (shard, burst) so streams differ but are pure.
    fn pair_feed(
        n: u32,
        k: usize,
        bursts: u64,
    ) -> impl Fn(usize, u64, &mut Vec<(u32, u32, ForwardingBits)>) + Sync {
        move |shard, burst, buf| {
            if burst >= bursts {
                return;
            }
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let hop = ((shard as u64 + burst) % k as u64) as u8;
                    buf.push((s, d, ForwardingBits::from_hops(&[hop], k)));
                }
            }
        }
    }

    #[test]
    fn sharded_run_is_deterministic_and_ordered() {
        let (g, sp) = setup();
        let n = g.node_count() as u32;
        let mask = EdgeMask::all_up(g.edge_count());
        let source = RotatingSnapshots(vec![Arc::clone(sp.arena())]);
        let run = || {
            run_sharded(
                3,
                ForwarderOptions::default(),
                &source,
                &mask,
                None,
                pair_feed(n, sp.k(), 4),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 3);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.shard, i, "reports in shard order");
            assert_eq!(r.bursts, 4);
            assert_eq!(r.stats.packets, 4 * (n as u64) * (n as u64 - 1));
            assert_eq!(r.checksum, b[i].checksum, "shard {i} deterministic");
        }
        assert_eq!(merged_checksum(&a), merged_checksum(&b));
    }

    /// One shard over a trivial feed must equal a hand-driven
    /// `BatchForwarder` on the same packets — the runner adds
    /// orchestration, not semantics.
    #[test]
    fn single_shard_equals_direct_engine() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let pkts: Vec<_> = (1..g.node_count() as u32)
            .map(|d| (0u32, d, ForwardingBits::stay_in_slice(0, sp.k())))
            .collect();
        let feed = |_shard: usize, burst: u64, buf: &mut Vec<(u32, u32, ForwardingBits)>| {
            if burst == 0 {
                buf.extend_from_slice(&pkts);
            }
        };
        let source = RotatingSnapshots(vec![Arc::clone(sp.arena())]);
        let reports = run_sharded(1, ForwarderOptions::default(), &source, &mask, None, feed);
        let mut engine = BatchForwarder::new(ForwarderOptions::default());
        let direct: Vec<WalkOutcome> = engine.forward_burst(sp.arena(), &mask, &pkts).to_vec();
        assert_eq!(reports[0].checksum, outcomes_checksum(&direct));
        assert_eq!(reports[0].stats, *engine.stats());
    }

    #[test]
    fn live_cell_source_and_telemetry_feed() {
        let (g, sp) = setup();
        let n = g.node_count() as u32;
        let mask = EdgeMask::all_up(g.edge_count());
        let cell = FibCell::new(Arc::clone(sp.arena()));
        let reg = Registry::new();
        let tel = ForwardTelemetry::register(&reg);
        let reports = run_sharded(
            2,
            ForwarderOptions::default(),
            &cell,
            &mask,
            Some(&tel),
            pair_feed(n, sp.k(), 2),
        );
        let total: u64 = reports.iter().map(|r| r.stats.packets).sum();
        assert_eq!(total, 2 * 2 * (n as u64) * (n as u64 - 1));
        assert_eq!(tel.packets.get(), total);
        assert_eq!(tel.bursts.get(), 4);
        assert!(tel.burst_seconds.count() == 4);
    }

    /// A hub used as a polling `SnapshotSource` behaves like a cell: the
    /// run forwards over whatever is current, and matches a rotating
    /// source pinned to the same single snapshot.
    #[test]
    fn hub_polling_source_matches_fixed_snapshot() {
        let (g, sp) = setup();
        let n = g.node_count() as u32;
        let mask = EdgeMask::all_up(g.edge_count());
        let hub = SnapshotHub::new(Arc::clone(sp.arena()));
        let fixed = RotatingSnapshots(vec![Arc::clone(sp.arena())]);
        let live = run_sharded(
            2,
            ForwarderOptions::default(),
            &hub,
            &mask,
            None,
            pair_feed(n, sp.k(), 3),
        );
        let pinned = run_sharded(
            2,
            ForwarderOptions::default(),
            &fixed,
            &mask,
            None,
            pair_feed(n, sp.k(), 3),
        );
        assert_eq!(merged_checksum(&live), merged_checksum(&pinned));
    }

    /// Subscribed workers over a quiescent hub: the primed epoch is the
    /// only one seen, and packet accounting matches the feed exactly.
    #[test]
    fn live_workers_on_a_quiescent_hub_see_one_epoch() {
        let (g, sp) = setup();
        let n = g.node_count() as u32;
        let mask = EdgeMask::all_up(g.edge_count());
        let hub = SnapshotHub::new(Arc::clone(sp.arena()));
        // Publishes that land before any worker subscribes are folded
        // into the primed snapshot.
        hub.publish(Arc::clone(sp.arena()));
        hub.publish(Arc::clone(sp.arena()));
        let stop = AtomicBool::new(false);
        let reports = run_live(
            2,
            ForwarderOptions::default(),
            &hub,
            &mask,
            None,
            &stop,
            pair_feed(n, sp.k(), 3),
        );
        assert_eq!(reports.len(), 2);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.shard, i);
            assert_eq!(r.bursts, 3);
            assert_eq!(r.stats.packets, 3 * (n as u64) * (n as u64 - 1));
            assert_eq!(r.epochs_seen, 1, "no publish while running");
            assert_eq!(r.final_epoch, 2, "primed with the latest epoch");
        }
    }

    /// Workers on an endless feed stop when the flag is raised, and a
    /// mid-run publish is observed as a new epoch.
    #[test]
    fn live_workers_pick_up_publishes_and_honor_the_stop_flag() {
        let (g, sp) = setup();
        let n = g.node_count() as u32;
        let mask = EdgeMask::all_up(g.edge_count());
        let hub = SnapshotHub::new(Arc::clone(sp.arena()));
        let stop = AtomicBool::new(false);
        let reg = Registry::new();
        let tel = ForwardTelemetry::register(&reg);
        let reports = crossbeam::thread::scope(|scope| {
            let publisher = scope.spawn(|_| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                hub.publish(Arc::clone(sp.arena()));
                std::thread::sleep(std::time::Duration::from_millis(20));
                stop.store(true, Ordering::Relaxed);
            });
            // Endless feed: only the stop flag ends the run.
            let reports = run_live(
                2,
                ForwarderOptions::default(),
                &hub,
                &mask,
                Some(&tel),
                &stop,
                |_shard, _burst, buf: &mut Vec<(u32, u32, ForwardingBits)>| {
                    for d in 1..n {
                        buf.push((0, d, ForwardingBits::stay_in_slice(0, sp.k())));
                    }
                },
            );
            publisher.join().unwrap();
            reports
        })
        .unwrap();
        let total: u64 = reports.iter().map(|r| r.stats.packets).sum();
        assert!(total > 0, "workers forwarded before the stop flag");
        assert_eq!(tel.packets.get(), total);
        for r in &reports {
            assert!(r.bursts >= 1);
            assert!(r.epochs_seen >= 1 && r.epochs_seen <= 2);
            assert!(r.final_epoch <= hub.epoch());
        }
    }
}
