//! Wire formats: network header, splicing shim, payload.
//!
//! The network header is a compact IPv4 stand-in (the simulator routes on
//! node ids, not real prefixes):
//!
//! ```text
//! offset  field
//! 0       version (0x1)
//! 1       protocol (0x99 = splicing shim follows; anything else = payload)
//! 2       ttl
//! 3       flags (reserved)
//! 4..8    src node id (big endian)
//! 8..12   dst node id (big endian)
//! 12..14  total length (big endian)
//! ```
//!
//! When `protocol == SPLICE_PROTO`, a 20-byte shim follows, carrying the
//! inner protocol and the forwarding bits exactly as
//! [`ForwardingBits::to_bytes`] lays them out. Routers that do not speak
//! splicing just skip to the destination lookup — the incremental
//! deployment property §3.2 calls out.

use bytes::{BufMut, Bytes, BytesMut};
use splice_core::header::ForwardingBits;
use splice_graph::NodeId;

/// Protocol number marking "splicing shim follows".
pub const SPLICE_PROTO: u8 = 0x99;

/// Wire version implemented by this crate.
pub const WIRE_VERSION: u8 = 0x1;

/// Network-header length in bytes.
pub const NET_HEADER_LEN: usize = 14;

/// Shim length in bytes: inner protocol + reserved + 18 bits-bytes.
pub const SHIM_LEN: usize = 20;

/// A parsed packet.
#[derive(Clone, Debug, PartialEq)]
pub struct Packet {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Hops remaining.
    pub ttl: u8,
    /// The splicing shim, when present.
    pub shim: Option<Shim>,
    /// Inner protocol when no shim is present.
    pub protocol: u8,
    /// Opaque payload.
    pub payload: Bytes,
}

/// The splicing shim: forwarding bits plus the tunneled inner protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct Shim {
    /// Protocol of the payload behind the shim.
    pub inner_protocol: u8,
    /// The forwarding bits.
    pub bits: ForwardingBits,
}

/// Why a packet failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer bytes than a network header.
    Truncated,
    /// Unknown wire version.
    BadVersion(u8),
    /// Length field disagrees with the buffer.
    BadLength {
        /// Length the header claims.
        claimed: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Shim flagged but missing or malformed.
    BadShim,
}

impl Packet {
    /// Build a spliced data packet.
    pub fn spliced(
        src: NodeId,
        dst: NodeId,
        ttl: u8,
        bits: ForwardingBits,
        payload: Bytes,
    ) -> Packet {
        Packet {
            src,
            dst,
            ttl,
            shim: Some(Shim {
                inner_protocol: 0x06, // "TCP" behind the shim
                bits,
            }),
            protocol: SPLICE_PROTO,
            payload,
        }
    }

    /// Build a legacy (shim-less) packet.
    pub fn plain(src: NodeId, dst: NodeId, ttl: u8, payload: Bytes) -> Packet {
        Packet {
            src,
            dst,
            ttl,
            shim: None,
            protocol: 0x06,
            payload,
        }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let shim_len = if self.shim.is_some() { SHIM_LEN } else { 0 };
        let total = NET_HEADER_LEN + shim_len + self.payload.len();
        let mut buf = BytesMut::with_capacity(total);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(if self.shim.is_some() {
            SPLICE_PROTO
        } else {
            self.protocol
        });
        buf.put_u8(self.ttl);
        buf.put_u8(0);
        buf.put_u32(self.src.0);
        buf.put_u32(self.dst.0);
        buf.put_u16(total as u16);
        if let Some(shim) = &self.shim {
            buf.put_u8(shim.inner_protocol);
            buf.put_u8(0);
            buf.put_slice(&shim.bits.to_bytes());
        }
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse wire bytes.
    pub fn decode(bytes: &Bytes) -> Result<Packet, PacketError> {
        if bytes.len() < NET_HEADER_LEN {
            return Err(PacketError::Truncated);
        }
        let version = bytes[0];
        if version != WIRE_VERSION {
            return Err(PacketError::BadVersion(version));
        }
        let protocol = bytes[1];
        let ttl = bytes[2];
        let src = NodeId(u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes")));
        let dst = NodeId(u32::from_be_bytes(
            bytes[8..12].try_into().expect("4 bytes"),
        ));
        let claimed = u16::from_be_bytes(bytes[12..14].try_into().expect("2 bytes")) as usize;
        if claimed != bytes.len() {
            return Err(PacketError::BadLength {
                claimed,
                actual: bytes.len(),
            });
        }
        let (shim, payload_start) = if protocol == SPLICE_PROTO {
            if bytes.len() < NET_HEADER_LEN + SHIM_LEN {
                return Err(PacketError::BadShim);
            }
            let inner_protocol = bytes[NET_HEADER_LEN];
            let bits =
                ForwardingBits::from_bytes(&bytes[NET_HEADER_LEN + 2..NET_HEADER_LEN + SHIM_LEN])
                    .ok_or(PacketError::BadShim)?;
            (
                Some(Shim {
                    inner_protocol,
                    bits,
                }),
                NET_HEADER_LEN + SHIM_LEN,
            )
        } else {
            (None, NET_HEADER_LEN)
        };
        Ok(Packet {
            src,
            dst,
            ttl,
            shim,
            protocol,
            payload: bytes.slice(payload_start..),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits() -> ForwardingBits {
        ForwardingBits::from_hops(&[1, 0, 2, 3], 4)
    }

    #[test]
    fn spliced_roundtrip() {
        let p = Packet::spliced(
            NodeId(3),
            NodeId(9),
            64,
            bits(),
            Bytes::from_static(b"hello"),
        );
        let wire = p.encode();
        let q = Packet::decode(&wire).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.shim.unwrap().bits, bits());
        assert_eq!(&q.payload[..], b"hello");
    }

    #[test]
    fn plain_roundtrip() {
        let p = Packet::plain(NodeId(1), NodeId(2), 32, Bytes::from_static(b"data"));
        let wire = p.encode();
        assert_eq!(wire.len(), NET_HEADER_LEN + 4);
        let q = Packet::decode(&wire).unwrap();
        assert_eq!(p, q);
        assert!(q.shim.is_none());
    }

    #[test]
    fn truncated_rejected() {
        let short = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(Packet::decode(&short), Err(PacketError::Truncated));
    }

    #[test]
    fn version_checked() {
        let p = Packet::plain(NodeId(1), NodeId(2), 32, Bytes::new());
        let mut raw = p.encode().to_vec();
        raw[0] = 7;
        assert_eq!(
            Packet::decode(&Bytes::from(raw)),
            Err(PacketError::BadVersion(7))
        );
    }

    #[test]
    fn length_field_checked() {
        let p = Packet::plain(NodeId(1), NodeId(2), 32, Bytes::from_static(b"xy"));
        let mut raw = p.encode().to_vec();
        raw.push(0); // extra byte not covered by length
        assert!(matches!(
            Packet::decode(&Bytes::from(raw)),
            Err(PacketError::BadLength { .. })
        ));
    }

    #[test]
    fn corrupt_shim_rejected() {
        let p = Packet::spliced(NodeId(1), NodeId(2), 32, bits(), Bytes::new());
        let mut raw = p.encode().to_vec();
        raw[NET_HEADER_LEN + 2] = 200; // bits_per_hop byte -> invalid (> 8)
        assert_eq!(Packet::decode(&Bytes::from(raw)), Err(PacketError::BadShim));
    }

    #[test]
    fn shim_flag_without_shim_rejected() {
        let p = Packet::plain(NodeId(1), NodeId(2), 32, Bytes::new());
        let mut raw = p.encode().to_vec();
        raw[1] = SPLICE_PROTO; // claims a shim that is not there
                               // Fix the length byte so only the shim check can fail.
        assert_eq!(Packet::decode(&Bytes::from(raw)), Err(PacketError::BadShim));
    }

    #[test]
    fn empty_payload_ok() {
        let p = Packet::spliced(NodeId(0), NodeId(1), 1, bits(), Bytes::new());
        let q = Packet::decode(&p.encode()).unwrap();
        assert!(q.payload.is_empty());
    }
}
