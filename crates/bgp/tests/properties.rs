//! Property-based tests for the interdomain substrate: on arbitrary
//! AS hierarchies, every computed route must respect Gao–Rexford, the
//! preference order, and the k-best structure.

use proptest::prelude::*;
use splice_bgp::asgraph::{AsGraph, AsId, Relationship};
use splice_bgp::bgp_sim::BgpSim;

/// Strategy: a random internet-like hierarchy.
fn arb_as_graph() -> impl Strategy<Value = AsGraph> {
    (1usize..=3, 2usize..=5, 0usize..=10, any::<u64>())
        .prop_map(|(t1, mid, stub, seed)| AsGraph::internet_like(t1, mid, stub, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every route at every AS toward every destination is valley-free
    /// and loop-free.
    #[test]
    fn routes_are_valley_free_and_loop_free(g in arb_as_graph(), k in 1usize..=4) {
        for dest in g.ases() {
            let sim = BgpSim::converge(&g, dest, k);
            for a in g.ases() {
                for r in &sim.ribs[a.index()] {
                    let mut full = vec![a];
                    full.extend_from_slice(&r.path);
                    prop_assert!(g.is_valley_free(&full), "valley: {full:?}");
                    // Loop-free: no AS repeats.
                    let mut seen = std::collections::HashSet::new();
                    prop_assert!(full.iter().all(|x| seen.insert(*x)), "loop: {full:?}");
                    // Route terminates at the destination.
                    prop_assert_eq!(*full.last().unwrap(), dest);
                }
            }
        }
    }

    /// Installed routes are sorted by preference and next-hop distinct.
    #[test]
    fn ribs_sorted_and_next_hop_distinct(g in arb_as_graph(), k in 1usize..=4) {
        let dest = AsId(0);
        let sim = BgpSim::converge(&g, dest, k);
        for a in g.ases() {
            let rib = &sim.ribs[a.index()];
            prop_assert!(rib.len() <= k.max(1));
            for w in rib.windows(2) {
                prop_assert_ne!(
                    w[0].compare(&w[1]),
                    std::cmp::Ordering::Greater,
                    "rib out of order"
                );
            }
            let mut hops = std::collections::HashSet::new();
            for r in rib.iter().filter(|r| !r.is_empty()) {
                prop_assert!(hops.insert(r.next_hop()), "duplicate next hop");
            }
        }
    }

    /// A hierarchy (every non-tier-1 AS has a provider) gives full
    /// coverage, and the best route at a customer is never worse than
    /// reaching through that customer's own provider chain implies.
    #[test]
    fn full_coverage_and_k_monotone(g in arb_as_graph()) {
        let dest = AsId(g.as_count() as u32 - 1);
        let one = BgpSim::converge(&g, dest, 1);
        let three = BgpSim::converge(&g, dest, 3);
        prop_assert_eq!(one.coverage(&g), 1.0);
        for a in g.ases() {
            // More allowed routes never lose the best one.
            prop_assert_eq!(
                one.best(a).map(|r| r.path.clone()),
                three.best(a).map(|r| r.path.clone()),
                "k changed the best route at {:?}",
                a
            );
            prop_assert!(three.route_count(a) >= one.route_count(a));
        }
    }

    /// No route learned from a peer or provider is ever re-exported to a
    /// peer or provider (checked structurally: any two consecutive
    /// non-customer relationships going "down then up" would be a valley,
    /// already covered; here we check the export rule directly on ribs).
    #[test]
    fn no_peer_or_provider_route_reaches_another_peer(g in arb_as_graph()) {
        let dest = AsId(0);
        let sim = BgpSim::converge(&g, dest, 2);
        for a in g.ases() {
            for r in &sim.ribs[a.index()] {
                let Some(nh) = r.next_hop() else { continue };
                // If we learned this from a peer or provider, the neighbor
                // must have had a customer (or origin) route: its own path
                // suffix must descend only.
                if matches!(
                    r.learned_from,
                    Some(Relationship::Peer) | Some(Relationship::Provider)
                ) {
                    let mut suffix = vec![nh];
                    suffix.extend_from_slice(&r.path[1..]);
                    // Valley-free of the suffix with phase forced to
                    // "descending or peer once": equivalent to checking the
                    // suffix itself is valley-free starting at the neighbor.
                    prop_assert!(g.is_valley_free(&suffix));
                }
            }
        }
    }
}
