//! Spliced BGP: forwarding over the k installed interdomain routes.
//!
//! With k routes per destination in k FIBs, the splicing bits choose which
//! route's next hop each AS uses — giving end systems access to multiple
//! interdomain paths with no BGP protocol changes and no router-to-router
//! coordination (the contrast the paper draws with MIRO).
//!
//! The experiment here is the AS-level analogue of Figure 3: fail
//! inter-AS links, and measure which ASes can still deliver to the
//! destination using *already installed* routes (i.e. before BGP
//! reconverges), as k grows.

use crate::asgraph::{AsGraph, AsId};
use crate::bgp_sim::BgpSim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A set of failed inter-AS links (by link id).
#[derive(Clone, Debug, Default)]
pub struct AsLinkFailures {
    failed: Vec<bool>,
}

impl AsLinkFailures {
    /// No failures over `m` links.
    pub fn none(m: usize) -> AsLinkFailures {
        AsLinkFailures {
            failed: vec![false; m],
        }
    }

    /// Fail each link independently with probability `p`.
    pub fn sample(g: &AsGraph, p: f64, rng: &mut StdRng) -> AsLinkFailures {
        AsLinkFailures {
            failed: (0..g.link_count())
                .map(|_| rng.gen_bool(p.clamp(0.0, 1.0)))
                .collect(),
        }
    }

    /// Whether link `i` is failed.
    pub fn is_failed(&self, i: usize) -> bool {
        self.failed[i]
    }
}

/// Which ASes can still reach the destination by hopping along installed
/// routes (any of the k, switchable at every AS), avoiding failed links.
///
/// Reverse reachability over the "spliced" successor structure — the AS
/// level twin of `Splicing::reachable_to`.
pub fn spliced_reachability(
    g: &AsGraph,
    sim: &BgpSim,
    k: usize,
    failures: &AsLinkFailures,
) -> Vec<bool> {
    let n = g.as_count();
    // succ[a] = next-hop ASes over up links, using the first k routes.
    let mut rev: Vec<Vec<AsId>> = vec![Vec::new(); n];
    for a in g.ases() {
        if a == sim.dest {
            continue;
        }
        for r in sim.ribs[a.index()].iter().take(k) {
            let (Some(nh), Some(link)) = (r.next_hop(), r.via) else {
                continue;
            };
            if !failures.is_failed(link.index()) {
                rev[nh.index()].push(a);
            }
        }
    }
    let mut reach = vec![false; n];
    let mut q = VecDeque::new();
    reach[sim.dest.index()] = true;
    q.push_back(sim.dest);
    while let Some(v) = q.pop_front() {
        for &u in &rev[v.index()] {
            if !reach[u.index()] {
                reach[u.index()] = true;
                q.push_back(u);
            }
        }
    }
    reach
}

/// One point of the AS-level reliability curve.
#[derive(Clone, Debug, PartialEq)]
pub struct BgpReliabilityPoint {
    /// Link-failure probability.
    pub p: f64,
    /// Slice count (routes installed per destination).
    pub k: usize,
    /// Mean fraction of ASes cut off from the destination.
    pub disconnected: f64,
}

/// Sweep `ps × ks` for destination `dest`, with common random failures
/// across `k` (same methodology as the intradomain Figure 3).
pub fn bgp_reliability(
    g: &AsGraph,
    dest: AsId,
    ks: &[usize],
    ps: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<BgpReliabilityPoint> {
    let kmax = ks.iter().copied().max().expect("at least one k");
    let sim = BgpSim::converge(g, dest, kmax);
    let n = g.as_count();
    let mut out = Vec::new();
    for &p in ps {
        let mut sums = vec![0.0; ks.len()];
        for trial in 0..trials {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (trial as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ p.to_bits(),
            );
            let failures = AsLinkFailures::sample(g, p, &mut rng);
            for (ki, &k) in ks.iter().enumerate() {
                let reach = spliced_reachability(g, &sim, k, &failures);
                let cut = (0..n).filter(|&i| !reach[i]).count();
                sums[ki] += (cut as f64) / (n - 1) as f64;
            }
        }
        for (ki, &k) in ks.iter().enumerate() {
            out.push(BgpReliabilityPoint {
                p,
                k,
                disconnected: sums[ki] / trials as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_full_reachability() {
        let g = AsGraph::internet_like(3, 5, 10, 2);
        let sim = BgpSim::converge(&g, AsId(0), 2);
        let reach = spliced_reachability(&g, &sim, 2, &AsLinkFailures::none(g.link_count()));
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn more_routes_help_under_failures() {
        let g = AsGraph::internet_like(3, 6, 15, 5);
        let points = bgp_reliability(&g, AsId(3), &[1, 2, 3], &[0.05, 0.1], 60, 11);
        // Group by p and check monotone improvement in k.
        for &p in &[0.05, 0.1] {
            let by_k: Vec<f64> = [1, 2, 3]
                .iter()
                .map(|&k| {
                    points
                        .iter()
                        .find(|pt| pt.k == k && (pt.p - p).abs() < 1e-12)
                        .unwrap()
                        .disconnected
                })
                .collect();
            assert!(by_k[1] <= by_k[0] + 1e-12, "k=2 worse at p={p}");
            assert!(by_k[2] <= by_k[1] + 1e-12, "k=3 worse at p={p}");
        }
    }

    #[test]
    fn failed_link_cuts_single_homed_stub() {
        // Stub 2 buys only from 1; fail that link: stub cut off.
        let mut g = AsGraph::new(3);
        g.add_transit(AsId(1), AsId(0));
        let l = g.add_transit(AsId(2), AsId(1));
        let sim = BgpSim::converge(&g, AsId(0), 2);
        let mut failures = AsLinkFailures::none(g.link_count());
        failures.failed[l.index()] = true;
        let reach = spliced_reachability(&g, &sim, 2, &failures);
        assert!(reach[1.min(reach.len() - 1)]);
        assert!(!reach[2]);
    }

    #[test]
    fn deterministic() {
        let g = AsGraph::internet_like(2, 4, 8, 3);
        let a = bgp_reliability(&g, AsId(1), &[1, 2], &[0.08], 30, 9);
        let b = bgp_reliability(&g, AsId(1), &[1, 2], &[0.08], 30, 9);
        assert_eq!(a, b);
    }
}
