//! A deterministic path-vector simulation with k-best route selection.
//!
//! For one destination at a time (the paper's spliced BGP installs k
//! routes *per destination*), the simulator runs rounds: every AS
//! recomputes its k best next-hop-distinct routes from its neighbors'
//! advertised best routes, under Gao–Rexford export rules, until a
//! fixpoint. Gao–Rexford policies guarantee convergence; the k-best
//! generalization keeps the same preference lattice, so rounds are
//! bounded by the network diameter times the preference depth.

use crate::asgraph::{AsGraph, AsId};
use crate::routes::Route;

/// The converged k-best routing state for one destination.
#[derive(Clone, Debug)]
pub struct BgpSim {
    /// Destination AS.
    pub dest: AsId,
    /// `ribs[a]` = up to k routes at AS `a`, best first.
    pub ribs: Vec<Vec<Route>>,
    /// Rounds needed to converge.
    pub rounds: usize,
}

impl BgpSim {
    /// Converge k-best routing toward `dest`.
    ///
    /// # Panics
    /// Panics if `k == 0` or convergence needs more than `4·n` rounds
    /// (which would indicate a policy-oscillation bug).
    pub fn converge(g: &AsGraph, dest: AsId, k: usize) -> BgpSim {
        assert!(k >= 1, "need at least one route per destination");
        let n = g.as_count();
        let mut ribs: Vec<Vec<Route>> = vec![Vec::new(); n];
        ribs[dest.index()].push(Route::origin());

        let mut rounds = 0usize;
        loop {
            rounds += 1;
            assert!(
                rounds <= 4 * n + 8,
                "path-vector failed to converge — policy oscillation?"
            );
            let mut changed = false;
            // Deterministic order: AS 0..n recompute from current ribs.
            for a in g.ases() {
                if a == dest {
                    continue;
                }
                let mut candidates: Vec<Route> = Vec::new();
                for &(nbr, rel, link) in g.neighbors(a) {
                    // The neighbor advertises its *best* route (classic BGP:
                    // one announcement per peer), if export policy allows.
                    let Some(best) = ribs[nbr.index()].first() else {
                        continue;
                    };
                    // Export decision is made by the neighbor; `rel` is our
                    // view, so the neighbor's view of us is the inverse.
                    let their_view = match rel {
                        crate::asgraph::Relationship::Customer => {
                            crate::asgraph::Relationship::Provider
                        }
                        crate::asgraph::Relationship::Provider => {
                            crate::asgraph::Relationship::Customer
                        }
                        crate::asgraph::Relationship::Peer => crate::asgraph::Relationship::Peer,
                    };
                    if !best.exportable_to(their_view) {
                        continue;
                    }
                    if best.contains(a) || best.next_hop() == Some(a) {
                        continue; // loop prevention
                    }
                    let mut path = Vec::with_capacity(best.len() + 1);
                    path.push(nbr);
                    path.extend_from_slice(&best.path);
                    if path.contains(&a) {
                        continue;
                    }
                    candidates.push(Route {
                        path,
                        learned_from: Some(rel),
                        via: Some(link),
                    });
                }
                candidates.sort_by(|x, y| x.compare(y));
                // k best with distinct next hops.
                let mut selected: Vec<Route> = Vec::with_capacity(k);
                for c in candidates {
                    if selected.len() >= k {
                        break;
                    }
                    if selected.iter().all(|s| s.next_hop() != c.next_hop()) {
                        selected.push(c);
                    }
                }
                if selected != ribs[a.index()] {
                    ribs[a.index()] = selected;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        BgpSim { dest, ribs, rounds }
    }

    /// The best route at `a`, if any.
    pub fn best(&self, a: AsId) -> Option<&Route> {
        self.ribs[a.index()].first()
    }

    /// Number of routes installed at `a`.
    pub fn route_count(&self, a: AsId) -> usize {
        self.ribs[a.index()].len()
    }

    /// Fraction of ASes (other than the destination) with at least one
    /// route.
    pub fn coverage(&self, g: &AsGraph) -> f64 {
        let n = g.as_count();
        let have = g
            .ases()
            .filter(|&a| a != self.dest && !self.ribs[a.index()].is_empty())
            .count();
        have as f64 / (n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asgraph::Relationship;

    /// 0 is a tier-1; 1 and 2 are its customers; 3 buys from both 1 and 2.
    fn diamond() -> AsGraph {
        let mut g = AsGraph::new(4);
        g.add_transit(AsId(1), AsId(0));
        g.add_transit(AsId(2), AsId(0));
        g.add_transit(AsId(3), AsId(1));
        g.add_transit(AsId(3), AsId(2));
        g
    }

    #[test]
    fn everyone_learns_the_destination() {
        let g = diamond();
        let sim = BgpSim::converge(&g, AsId(0), 1);
        assert_eq!(sim.coverage(&g), 1.0);
        // 3 reaches 0 via its lower-id provider 1.
        let best = sim.best(AsId(3)).unwrap();
        assert_eq!(best.path, vec![AsId(1), AsId(0)]);
        assert_eq!(best.learned_from, Some(Relationship::Provider));
    }

    #[test]
    fn k_best_installs_distinct_next_hops() {
        let g = diamond();
        let sim = BgpSim::converge(&g, AsId(0), 2);
        assert_eq!(sim.route_count(AsId(3)), 2);
        let hops: Vec<_> = sim.ribs[3].iter().map(|r| r.next_hop().unwrap()).collect();
        assert_eq!(hops, vec![AsId(1), AsId(2)]);
    }

    #[test]
    fn all_paths_are_valley_free() {
        let g = AsGraph::internet_like(3, 6, 12, 4);
        for dest in g.ases() {
            let sim = BgpSim::converge(&g, dest, 3);
            for a in g.ases() {
                for r in &sim.ribs[a.index()] {
                    // Full path from a: a, then r.path.
                    let mut full = vec![a];
                    full.extend_from_slice(&r.path);
                    assert!(
                        g.is_valley_free(&full),
                        "valley in route {full:?} toward {dest:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn customer_routes_preferred_over_peer() {
        // dest 2 is customer of 1; 1 peers with 0; 2 also buys from 0.
        let mut g = AsGraph::new(3);
        g.add_peering(AsId(0), AsId(1));
        g.add_transit(AsId(2), AsId(1));
        g.add_transit(AsId(2), AsId(0));
        let sim = BgpSim::converge(&g, AsId(2), 1);
        // AS 0 hears 2 directly (customer) and could hear via peer 1 --
        // customer route must win.
        let best = sim.best(AsId(0)).unwrap();
        assert_eq!(best.learned_from, Some(Relationship::Customer));
        assert_eq!(best.path, vec![AsId(2)]);
    }

    #[test]
    fn peer_routes_not_re_exported_to_peers() {
        // 0 -peer- 1 -peer- 2; dest = 0. Valley-free forbids 2 learning 0
        // through two consecutive peering hops.
        let mut g = AsGraph::new(3);
        g.add_peering(AsId(0), AsId(1));
        g.add_peering(AsId(1), AsId(2));
        let sim = BgpSim::converge(&g, AsId(0), 1);
        assert!(sim.best(AsId(1)).is_some());
        assert!(sim.best(AsId(2)).is_none(), "peer route leaked to a peer");
    }

    #[test]
    fn coverage_full_on_internet_like() {
        let g = AsGraph::internet_like(3, 5, 10, 7);
        let sim = BgpSim::converge(&g, AsId(17), 2);
        assert_eq!(sim.coverage(&g), 1.0, "hierarchy guarantees reachability");
        assert!(sim.rounds <= 4 * g.as_count() + 8);
    }

    #[test]
    fn deterministic() {
        let g = AsGraph::internet_like(3, 5, 10, 7);
        let a = BgpSim::converge(&g, AsId(2), 3);
        let b = BgpSim::converge(&g, AsId(2), 3);
        assert_eq!(a.ribs.len(), b.ribs.len());
        for (x, y) in a.ribs.iter().zip(&b.ribs) {
            assert_eq!(x, y);
        }
    }
}
