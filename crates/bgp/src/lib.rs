//! # splice-bgp
//!
//! Interdomain path splicing (§5 "Extensions to interdomain routing").
//!
//! The paper sketches a "spliced BGP": BGP routers already hold multiple
//! routes per destination; modify the decision process to select the
//! **k best** routes and install them in k forwarding tables, then let
//! the forwarding bits pick among them — multiple interdomain paths with
//! *no* extra router-to-router communication (contrast MIRO).
//!
//! This crate builds that system over a policy-annotated AS graph:
//!
//! * [`asgraph`] — AS-level topology with Gao–Rexford business
//!   relationships (customer/provider/peer) and an internet-like
//!   hierarchy generator (tier-1 clique, mid-tier providers, stubs).
//! * [`routes`] — routes, the standard BGP preference order
//!   (customer > peer > provider, then shortest AS path, then lowest
//!   neighbor id) and valley-free export rules.
//! * [`bgp_sim`] — a deterministic path-vector simulation to convergence,
//!   generalized to keep the k best next-hop-distinct routes per
//!   destination.
//! * [`splice_bgp`] — the splicing layer: per-destination successor
//!   graphs over the k installed routes, and the AS-level reliability
//!   experiment (fail inter-AS links, measure who still reaches the
//!   destination *without* waiting for reconvergence).

pub mod asgraph;
pub mod bgp_sim;
pub mod routes;
pub mod splice_bgp;

pub use asgraph::{AsGraph, AsId, Relationship};
pub use bgp_sim::BgpSim;
pub use routes::Route;
