//! AS-level topologies with business relationships.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An autonomous-system identifier (dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl AsId {
    /// As a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A neighbor's business relationship, from the local AS's perspective.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor pays us for transit.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We pay the neighbor for transit.
    Provider,
}

/// An inter-AS link id (dense index over undirected AS adjacencies).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AsLinkId(pub u32);

impl AsLinkId {
    /// As a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An AS graph with per-edge relationships.
#[derive(Clone, Debug, Default)]
pub struct AsGraph {
    n: usize,
    /// `(a, b)` with `a` the customer when the relationship is transit;
    /// for peering the order is arbitrary.
    links: Vec<(AsId, AsId, LinkKind)>,
    /// adjacency\[a\] = (neighbor, relationship from a's view, link id).
    adjacency: Vec<Vec<(AsId, Relationship, AsLinkId)>>,
}

/// Undirected link annotation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LinkKind {
    /// First endpoint is the customer of the second.
    Transit,
    /// Settlement-free peering.
    Peering,
}

impl AsGraph {
    /// An empty graph over `n` ASes.
    pub fn new(n: usize) -> AsGraph {
        AsGraph {
            n,
            links: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.n
    }

    /// Number of inter-AS links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All AS ids.
    pub fn ases(&self) -> impl Iterator<Item = AsId> + '_ {
        (0..self.n as u32).map(AsId)
    }

    /// Add a transit link: `customer` buys from `provider`.
    pub fn add_transit(&mut self, customer: AsId, provider: AsId) -> AsLinkId {
        assert_ne!(customer, provider, "self-transit rejected");
        let id = AsLinkId(self.links.len() as u32);
        self.links.push((customer, provider, LinkKind::Transit));
        self.adjacency[customer.index()].push((provider, Relationship::Provider, id));
        self.adjacency[provider.index()].push((customer, Relationship::Customer, id));
        id
    }

    /// Add a settlement-free peering link.
    pub fn add_peering(&mut self, a: AsId, b: AsId) -> AsLinkId {
        assert_ne!(a, b, "self-peering rejected");
        let id = AsLinkId(self.links.len() as u32);
        self.links.push((a, b, LinkKind::Peering));
        self.adjacency[a.index()].push((b, Relationship::Peer, id));
        self.adjacency[b.index()].push((a, Relationship::Peer, id));
        id
    }

    /// Neighbors of `a` with relationships from `a`'s perspective.
    pub fn neighbors(&self, a: AsId) -> &[(AsId, Relationship, AsLinkId)] {
        &self.adjacency[a.index()]
    }

    /// Generate an internet-like hierarchy:
    ///
    /// * `t1` tier-1 ASes, fully meshed with peering;
    /// * `mid` mid-tier ASes, each buying transit from 2 tier-1s (or all,
    ///   if fewer exist) and peering with one other random mid;
    /// * `stub` stub ASes, each buying transit from 2 random mids.
    pub fn internet_like(t1: usize, mid: usize, stub: usize, seed: u64) -> AsGraph {
        assert!(t1 >= 1 && mid >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = t1 + mid + stub;
        let mut g = AsGraph::new(n);
        // Tier-1 clique.
        for a in 0..t1 as u32 {
            for b in (a + 1)..t1 as u32 {
                g.add_peering(AsId(a), AsId(b));
            }
        }
        // Mid tier: multihomed to tier-1.
        let t1_ids: Vec<u32> = (0..t1 as u32).collect();
        for m in t1 as u32..(t1 + mid) as u32 {
            let mut providers = t1_ids.clone();
            providers.shuffle(&mut rng);
            for &p in providers.iter().take(2.min(t1)) {
                g.add_transit(AsId(m), AsId(p));
            }
        }
        // Mid-tier peering ring-ish: each mid peers with one random other.
        if mid >= 2 {
            for m in t1 as u32..(t1 + mid) as u32 {
                let other = loop {
                    let o = rng.gen_range(t1 as u32..(t1 + mid) as u32);
                    if o != m {
                        break o;
                    }
                };
                // Avoid duplicate peerings in either direction.
                let exists = g.adjacency[m as usize]
                    .iter()
                    .any(|&(nbr, rel, _)| nbr == AsId(other) && rel == Relationship::Peer);
                if !exists {
                    g.add_peering(AsId(m), AsId(other));
                }
            }
        }
        // Stubs: multihomed to mids.
        let mid_ids: Vec<u32> = (t1 as u32..(t1 + mid) as u32).collect();
        for s in (t1 + mid) as u32..n as u32 {
            let mut providers = mid_ids.clone();
            providers.shuffle(&mut rng);
            for &p in providers.iter().take(2.min(mid)) {
                g.add_transit(AsId(s), AsId(p));
            }
        }
        g
    }

    /// Whether an AS path is valley-free under this graph's relationships:
    /// uphill (customer→provider) segments, at most one peer step, then
    /// downhill (provider→customer) only.
    pub fn is_valley_free(&self, path: &[AsId]) -> bool {
        // 0 = climbing, 1 = peered, 2 = descending.
        let mut phase = 0u8;
        for w in path.windows(2) {
            let rel = self.adjacency[w[0].index()]
                .iter()
                .find(|&&(nbr, _, _)| nbr == w[1])
                .map(|&(_, rel, _)| rel);
            let Some(rel) = rel else {
                return false; // not even a link
            };
            match rel {
                Relationship::Provider => {
                    // climbing is only allowed before any peer/descent
                    if phase != 0 {
                        return false;
                    }
                }
                Relationship::Peer => {
                    if phase >= 1 {
                        return false;
                    }
                    phase = 1;
                }
                Relationship::Customer => {
                    phase = 2;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transit_link_views() {
        let mut g = AsGraph::new(2);
        g.add_transit(AsId(0), AsId(1));
        assert_eq!(g.neighbors(AsId(0))[0].1, Relationship::Provider);
        assert_eq!(g.neighbors(AsId(1))[0].1, Relationship::Customer);
    }

    #[test]
    fn peering_is_symmetric() {
        let mut g = AsGraph::new(2);
        g.add_peering(AsId(0), AsId(1));
        assert_eq!(g.neighbors(AsId(0))[0].1, Relationship::Peer);
        assert_eq!(g.neighbors(AsId(1))[0].1, Relationship::Peer);
    }

    #[test]
    fn internet_like_shape() {
        let g = AsGraph::internet_like(3, 6, 12, 1);
        assert_eq!(g.as_count(), 21);
        // Tier-1 clique: 3 peering links; mids: 2 transit each; stubs: 2 each.
        assert!(g.link_count() >= 3 + 12 + 24);
        // Stubs have no customers.
        for s in 9..21u32 {
            assert!(g
                .neighbors(AsId(s))
                .iter()
                .all(|&(_, rel, _)| rel != Relationship::Customer));
        }
    }

    #[test]
    fn valley_free_checks() {
        // 0 <- 1 <- 2 (2 customer of 1, 1 customer of 0), 0 peers 3, 3 <- 4.
        let mut g = AsGraph::new(5);
        g.add_transit(AsId(1), AsId(0));
        g.add_transit(AsId(2), AsId(1));
        g.add_peering(AsId(0), AsId(3));
        g.add_transit(AsId(4), AsId(3));
        // climb-climb-peer-descend: valid.
        assert!(g.is_valley_free(&[AsId(2), AsId(1), AsId(0), AsId(3), AsId(4)]));
        // descend then climb: a valley.
        assert!(!g.is_valley_free(&[AsId(0), AsId(1), AsId(0)]));
        let mut g2 = AsGraph::new(3);
        g2.add_transit(AsId(1), AsId(0));
        g2.add_transit(AsId(1), AsId(2));
        // 0 -> 1 (descend to customer) -> 2 (climb to provider): valley!
        assert!(!g2.is_valley_free(&[AsId(0), AsId(1), AsId(2)]));
        // non-adjacent hop
        assert!(!g2.is_valley_free(&[AsId(0), AsId(2)]));
    }

    #[test]
    fn deterministic_generation() {
        let a = AsGraph::internet_like(2, 4, 8, 9);
        let b = AsGraph::internet_like(2, 4, 8, 9);
        assert_eq!(a.link_count(), b.link_count());
    }

    #[test]
    #[should_panic(expected = "self-transit")]
    fn self_links_rejected() {
        let mut g = AsGraph::new(1);
        g.add_transit(AsId(0), AsId(0));
    }
}
