//! BGP routes, preference, and export policy.

use crate::asgraph::{AsId, AsLinkId, Relationship};
use std::cmp::Ordering;

/// One route toward a destination AS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// AS path, starting with the next hop and ending at the destination.
    /// Empty for the destination's own (origin) route.
    pub path: Vec<AsId>,
    /// Relationship through which the route was learned (`None` for the
    /// origin route at the destination itself).
    pub learned_from: Option<Relationship>,
    /// The inter-AS link to the next hop (`None` for the origin route).
    pub via: Option<AsLinkId>,
}

impl Route {
    /// The destination's own route to itself.
    pub fn origin() -> Route {
        Route {
            path: Vec::new(),
            learned_from: None,
            via: None,
        }
    }

    /// Next-hop AS, if any.
    pub fn next_hop(&self) -> Option<AsId> {
        self.path.first().copied()
    }

    /// AS-path length.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// True for the origin route.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// Numeric preference class: customer 0 < peer 1 < provider 2 (lower
    /// preferred), matching local-pref practice under Gao–Rexford.
    fn pref_class(&self) -> u8 {
        match self.learned_from {
            None => 0, // origin beats everything
            Some(Relationship::Customer) => 0,
            Some(Relationship::Peer) => 1,
            Some(Relationship::Provider) => 2,
        }
    }

    /// Total order: preference class, then path length, then next-hop id —
    /// the deterministic tie-break the simulator relies on.
    pub fn compare(&self, other: &Route) -> Ordering {
        self.pref_class()
            .cmp(&other.pref_class())
            .then(self.len().cmp(&other.len()))
            .then_with(|| self.next_hop().cmp(&other.next_hop()))
    }

    /// Export rule (Gao–Rexford): a route may be advertised to a neighbor
    /// of kind `to` iff it was learned from a customer (or originated
    /// here), *or* the neighbor is a customer (customers get everything).
    pub fn exportable_to(&self, to: Relationship) -> bool {
        match to {
            Relationship::Customer => true,
            Relationship::Peer | Relationship::Provider => {
                matches!(self.learned_from, None | Some(Relationship::Customer))
            }
        }
    }

    /// Whether the path visits `a` (loop prevention).
    pub fn contains(&self, a: AsId) -> bool {
        self.path.contains(&a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(rel: Relationship, path: &[u32]) -> Route {
        Route {
            path: path.iter().map(|&i| AsId(i)).collect(),
            learned_from: Some(rel),
            via: Some(AsLinkId(0)),
        }
    }

    #[test]
    fn customer_beats_shorter_peer() {
        let c = route(Relationship::Customer, &[1, 2, 3]);
        let p = route(Relationship::Peer, &[4]);
        assert_eq!(c.compare(&p), Ordering::Less);
    }

    #[test]
    fn same_class_prefers_shorter() {
        let a = route(Relationship::Peer, &[1, 2]);
        let b = route(Relationship::Peer, &[3]);
        assert_eq!(b.compare(&a), Ordering::Less);
    }

    #[test]
    fn tie_breaks_on_next_hop() {
        let a = route(Relationship::Provider, &[2, 9]);
        let b = route(Relationship::Provider, &[5, 9]);
        assert_eq!(a.compare(&b), Ordering::Less);
    }

    #[test]
    fn origin_wins() {
        let o = Route::origin();
        let c = route(Relationship::Customer, &[1]);
        assert_eq!(o.compare(&c), Ordering::Less);
        assert!(o.is_empty());
        assert_eq!(o.next_hop(), None);
    }

    #[test]
    fn export_rules() {
        let from_customer = route(Relationship::Customer, &[1]);
        let from_peer = route(Relationship::Peer, &[1]);
        let from_provider = route(Relationship::Provider, &[1]);
        // Customer routes go everywhere.
        assert!(from_customer.exportable_to(Relationship::Customer));
        assert!(from_customer.exportable_to(Relationship::Peer));
        assert!(from_customer.exportable_to(Relationship::Provider));
        // Peer/provider routes only go to customers.
        assert!(from_peer.exportable_to(Relationship::Customer));
        assert!(!from_peer.exportable_to(Relationship::Peer));
        assert!(!from_peer.exportable_to(Relationship::Provider));
        assert!(from_provider.exportable_to(Relationship::Customer));
        assert!(!from_provider.exportable_to(Relationship::Provider));
        // Origin routes are advertised to everyone.
        assert!(Route::origin().exportable_to(Relationship::Provider));
        assert!(Route::origin().exportable_to(Relationship::Peer));
    }

    #[test]
    fn loop_detection() {
        let r = route(Relationship::Customer, &[1, 2, 3]);
        assert!(r.contains(AsId(2)));
        assert!(!r.contains(AsId(7)));
    }
}
