//! The flat spliced-FIB arena: all k slices' forwarding state in one
//! contiguous slab.
//!
//! The paper's §4.2 scalability claim is that splicing state grows
//! linearly in k. This module makes that state a measurable object: a
//! [`SpliceFib`] holds `next_hop` and `out_edge` as two slice-major
//! `Box<[u32]>` slabs indexed O(1) by `(slice, router, dst)`, with
//! [`NO_ROUTE`] (`u32::MAX`) standing in for "no entry" — no nesting, no
//! per-entry `Option` overhead, no pointer chasing on the data-plane hot
//! path. A k-prefix of a splicing is literally the first k planes of the
//! slab, so prefix "views" share the arena instead of deep-cloning it.
//!
//! [`crate::fib::RoutingTables`] remains as the thin legacy type the
//! protocol simulator produces and serialization consumes;
//! [`SpliceFib::from_tables`] / [`SpliceFib::to_tables`] convert between
//! the two losslessly.

use crate::fib::{Fib, RoutingTables};
use splice_graph::dijkstra::SpfWorkspace;
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};

/// Sentinel for "no installed entry" in both slabs. Valid node and edge
/// ids are dense and far below `u32::MAX`, so the sentinel can never
/// collide with real state.
pub const NO_ROUTE: u32 = u32::MAX;

/// What an incremental repair of one (or more) slice planes did: how many
/// destination columns were rewritten, how many were proven untouched and
/// skipped, and how many nodes were re-relaxed in total (the repair
/// frontier — the quantity the `splice_spf_repair_frontier` histogram
/// observes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Columns whose entries were recomputed and written back.
    pub patched_columns: usize,
    /// Columns left byte-identical (the event provably could not change
    /// them).
    pub skipped_columns: usize,
    /// Total re-relaxed nodes across all patched columns.
    pub frontier_nodes: usize,
}

impl RepairStats {
    /// Fold another plane's stats into this one.
    pub fn absorb(&mut self, other: RepairStats) {
        self.patched_columns += other.patched_columns;
        self.skipped_columns += other.skipped_columns;
        self.frontier_nodes += other.frontier_nodes;
    }
}

/// Edge-indexed membership bitmask for `edges`, built once per plane so
/// the per-column pre-scan costs O(1) per entry instead of O(|edges|) —
/// SRLG-sized failure sets stay linear instead of quadratic.
fn edge_marks(edge_count: usize, edges: &[EdgeId]) -> Vec<bool> {
    let mut marked = vec![false; edge_count];
    for e in edges {
        marked[e.index()] = true;
    }
    marked
}

/// A mutable view of one slice plane: that plane's `n·n` regions of the
/// two slabs as disjoint `&mut` borrows.
///
/// Planes are contiguous and non-overlapping, so
/// [`SpliceFib::planes_mut`] can hand every slice to a different worker
/// thread — this is the unit the batched repair path parallelizes over.
/// All column-granular fill/patch logic lives here; the arena-level
/// methods on [`SpliceFib`] are thin delegations.
#[derive(Debug)]
pub struct PlaneMut<'a> {
    n: usize,
    next_hop: &'a mut [u32],
    out_edge: &'a mut [u32],
}

impl PlaneMut<'_> {
    /// Number of routers (= destinations) in the plane.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, router: usize, dst: usize) -> usize {
        debug_assert!(router < self.n && dst < self.n);
        router * self.n + dst
    }

    /// Next hop and outgoing edge of `router` toward `dst` in this plane.
    #[inline]
    pub fn lookup(&self, router: NodeId, dst: NodeId) -> Option<(NodeId, EdgeId)> {
        let i = self.idx(router.index(), dst.index());
        let nh = self.next_hop[i];
        if nh == NO_ROUTE {
            None
        } else {
            Some((NodeId(nh), EdgeId(self.out_edge[i])))
        }
    }

    /// Overwrite the whole `dst` column from a router-indexed parent
    /// array — the shape [`SpfWorkspace::parents`] produces. The repair
    /// path's write primitive.
    pub fn patch_column(&mut self, dst: NodeId, parents: &[Option<(NodeId, EdgeId)>]) {
        assert_eq!(parents.len(), self.n, "parent array must be router-indexed");
        let base = dst.index();
        for (u, parent) in parents.iter().enumerate() {
            let i = base + u * self.n;
            match parent {
                Some((nh, e)) => {
                    self.next_hop[i] = nh.index() as u32;
                    self.out_edge[i] = e.index() as u32;
                }
                None => {
                    self.next_hop[i] = NO_ROUTE;
                    self.out_edge[i] = NO_ROUTE;
                }
            }
        }
    }

    /// Whether any router's installed out-edge in the `dst` column is
    /// flagged in the edge-indexed `marked` bitmask — the O(n) pre-scan
    /// that lets repairs skip columns an event cannot have touched.
    fn column_uses_marked(&self, dst: NodeId, marked: &[bool]) -> bool {
        let base = dst.index();
        (0..self.n).any(|u| {
            let oe = self.out_edge[base + u * self.n];
            oe != NO_ROUTE && marked[oe as usize]
        })
    }

    /// Run destination-rooted Dijkstra for every node under `weights` and
    /// install the resulting next hops, reusing `ws` across all n roots.
    /// Unreachable pairs are *left* alone, not overwritten — the plane
    /// must be empty (or stale entries cleared).
    pub fn fill(&mut self, g: &Graph, weights: &[f64], ws: &mut SpfWorkspace) {
        assert_eq!(self.n, g.node_count(), "plane built for a different graph");
        for t in g.nodes() {
            ws.run(g, t, weights, None);
            let parents = ws.parents();
            let base = t.index();
            for (u, parent) in parents.iter().enumerate() {
                if let Some((nh, e)) = parent {
                    let i = base + u * self.n;
                    self.next_hop[i] = nh.index() as u32;
                    self.out_edge[i] = e.index() as u32;
                }
            }
        }
    }

    /// The mask-aware sibling of [`PlaneMut::fill`]: run the n
    /// destination-rooted Dijkstras over the `mask`-up subgraph and write
    /// every column back whole, overwriting stale entries.
    pub fn fill_masked(
        &mut self,
        g: &Graph,
        weights: &[f64],
        mask: &EdgeMask,
        ws: &mut SpfWorkspace,
    ) {
        assert_eq!(self.n, g.node_count(), "plane built for a different graph");
        for t in g.nodes() {
            ws.run(g, t, weights, Some(mask));
            self.patch_column(t, ws.parents());
        }
    }

    /// Incrementally repair this plane after the links in `newly_failed`
    /// went down. `mask` is the new cumulative failure mask (with
    /// `newly_failed` already failed) and `weights` the slice's weight
    /// vector; the plane must hold the forwarding state that was correct
    /// immediately before the event.
    ///
    /// Columns whose tree does not cross a newly failed link are skipped
    /// after an O(n) bitmask scan — their entries are provably unchanged.
    /// Touched columns are loaded into `ws`, repaired via
    /// [`SpfWorkspace::repair_failures`], and written back whole.
    pub fn patch_failures(
        &mut self,
        g: &Graph,
        weights: &[f64],
        mask: &EdgeMask,
        newly_failed: &[EdgeId],
        ws: &mut SpfWorkspace,
    ) -> RepairStats {
        assert_eq!(self.n, g.node_count(), "plane built for a different graph");
        let marked = edge_marks(g.edge_count(), newly_failed);
        let mut stats = RepairStats::default();
        for t in g.nodes() {
            if !self.column_uses_marked(t, &marked) {
                stats.skipped_columns += 1;
                continue;
            }
            ws.load_tree(g, t, weights, |u| self.lookup(NodeId(u as u32), t));
            stats.frontier_nodes += ws.repair_failures(g, t, weights, mask, newly_failed);
            self.patch_column(t, ws.parents());
            stats.patched_columns += 1;
        }
        stats
    }

    /// Incrementally repair this plane after `edge`'s weight changed from
    /// `old_weight` to `weights[edge]` (`weights` is the slice's new
    /// vector). Weight increases skip columns that do not route over
    /// `edge`; decreases probe every column, but a probe that changes
    /// nothing costs one relaxation and skips the write-back.
    pub fn patch_reweight(
        &mut self,
        g: &Graph,
        weights: &[f64],
        mask: &EdgeMask,
        edge: EdgeId,
        old_weight: f64,
        ws: &mut SpfWorkspace,
    ) -> RepairStats {
        assert_eq!(self.n, g.node_count(), "plane built for a different graph");
        let increase = weights[edge.index()] > old_weight;
        let marked = edge_marks(g.edge_count(), &[edge]);
        // Loaded trees must reconstruct the *pre-event* distances, so the
        // chain walk sums the old vector; the repair then relaxes under
        // the new one.
        let mut old_weights = weights.to_vec();
        old_weights[edge.index()] = old_weight;
        let mut stats = RepairStats::default();
        for t in g.nodes() {
            // An increase on a link a column does not route over cannot
            // change that column; a decrease can improve any column.
            if increase && !self.column_uses_marked(t, &marked) {
                stats.skipped_columns += 1;
                continue;
            }
            ws.load_tree(g, t, &old_weights, |u| self.lookup(NodeId(u as u32), t));
            let touched = ws.repair_reweight(g, t, weights, mask, edge, old_weight);
            if touched == 0 {
                stats.skipped_columns += 1;
                continue;
            }
            stats.frontier_nodes += touched;
            self.patch_column(t, ws.parents());
            stats.patched_columns += 1;
        }
        stats
    }
}

/// A read-only borrow of one slice's n×n plane (see
/// [`SpliceFib::plane`]). `Copy`, pointer-sized-cheap, and shareable
/// across threads — the read-side counterpart of [`PlaneMut`].
#[derive(Clone, Copy, Debug)]
pub struct Plane<'a> {
    n: usize,
    next_hop: &'a [u32],
    out_edge: &'a [u32],
}

impl<'a> Plane<'a> {
    /// Routers (= destinations) per side of the plane.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw `(next_hop, out_edge)` words at `(router, dst)`; either word
    /// is [`NO_ROUTE`] for an uninstalled entry. No `Option` wrapping —
    /// batch walkers branch on the sentinel themselves.
    #[inline]
    pub fn lookup_raw(&self, router: u32, dst: u32) -> (u32, u32) {
        let i = router as usize * self.n + dst as usize;
        (self.next_hop[i], self.out_edge[i])
    }

    /// Typed lookup, same contract as [`SpliceFib::lookup`].
    #[inline]
    pub fn lookup(&self, router: NodeId, dst: NodeId) -> Option<(NodeId, EdgeId)> {
        let (nh, e) = self.lookup_raw(router.index() as u32, dst.index() as u32);
        if nh == NO_ROUTE {
            None
        } else {
            Some((NodeId(nh), EdgeId(e)))
        }
    }
}

/// All routers' forwarding state for all k slices, as one flat arena.
///
/// Layout: `plane(slice) → row(router) → column(dst)`, i.e. entry
/// `(slice, router, dst)` lives at `(slice·n + router)·n + dst`. One
/// router's per-destination row is therefore contiguous, and one slice's
/// full table (a "plane") is a contiguous `n·n` block — which is what
/// makes zero-copy k-prefix views possible.
#[derive(Clone, Debug, PartialEq)]
pub struct SpliceFib {
    k: usize,
    n: usize,
    next_hop: Box<[u32]>,
    out_edge: Box<[u32]>,
}

impl SpliceFib {
    /// An arena for `k` slices over `n` routers with no installed entries.
    pub fn empty(k: usize, n: usize) -> SpliceFib {
        let len = k * n * n;
        SpliceFib {
            k,
            n,
            next_hop: vec![NO_ROUTE; len].into_boxed_slice(),
            out_edge: vec![NO_ROUTE; len].into_boxed_slice(),
        }
    }

    #[inline]
    fn idx(&self, slice: usize, router: usize, dst: usize) -> usize {
        debug_assert!(slice < self.k && router < self.n && dst < self.n);
        (slice * self.n + router) * self.n + dst
    }

    /// Next hop and outgoing edge of `router` toward `dst` in `slice` —
    /// Algorithm 1's `Lookup(dst, slice)`, one multiply-add and two loads.
    #[inline]
    pub fn lookup(&self, slice: usize, router: NodeId, dst: NodeId) -> Option<(NodeId, EdgeId)> {
        let i = self.idx(slice, router.index(), dst.index());
        let nh = self.next_hop[i];
        if nh == NO_ROUTE {
            None
        } else {
            Some((NodeId(nh), EdgeId(self.out_edge[i])))
        }
    }

    /// Install (or clear) one entry.
    pub fn set(
        &mut self,
        slice: usize,
        router: NodeId,
        dst: NodeId,
        entry: Option<(NodeId, EdgeId)>,
    ) {
        let i = self.idx(slice, router.index(), dst.index());
        match entry {
            Some((nh, e)) => {
                self.next_hop[i] = nh.index() as u32;
                self.out_edge[i] = e.index() as u32;
            }
            None => {
                self.next_hop[i] = NO_ROUTE;
                self.out_edge[i] = NO_ROUTE;
            }
        }
    }

    /// Number of slice planes in the arena.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of routers (= destinations) per plane.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total arena footprint in bytes — the measured §4.2 state size.
    /// Exactly `k · n² · 2 · 4` bytes: linear in k by construction.
    pub fn state_bytes(&self) -> usize {
        (self.next_hop.len() + self.out_edge.len()) * std::mem::size_of::<u32>()
    }

    /// Bytes of a single slice plane (both slabs).
    pub fn plane_bytes(&self) -> usize {
        2 * self.n * self.n * std::mem::size_of::<u32>()
    }

    /// Installed (non-sentinel) entries across the first `k_prefix`
    /// planes — the entry-count state metric legacy
    /// [`RoutingTables::total_state`] reported.
    pub fn installed(&self, k_prefix: usize) -> usize {
        assert!(k_prefix <= self.k);
        let end = k_prefix * self.n * self.n;
        self.next_hop[..end]
            .iter()
            .filter(|&&v| v != NO_ROUTE)
            .count()
    }

    /// Installed entries in `router`'s row of `slice`.
    pub fn installed_for_router(&self, slice: usize, router: NodeId) -> usize {
        let start = self.idx(slice, router.index(), 0);
        self.next_hop[start..start + self.n]
            .iter()
            .filter(|&&v| v != NO_ROUTE)
            .count()
    }

    /// `router`'s contiguous per-destination rows in `slice`, raw:
    /// `(next_hop, out_edge)`, both dst-indexed with [`NO_ROUTE`] holes.
    pub fn row(&self, slice: usize, router: NodeId) -> (&[u32], &[u32]) {
        let start = self.idx(slice, router.index(), 0);
        (
            &self.next_hop[start..start + self.n],
            &self.out_edge[start..start + self.n],
        )
    }

    /// Run destination-rooted Dijkstra for every node under `weights` and
    /// install the resulting next hops directly into plane `slice`,
    /// reusing `ws` across all n roots. The plane must be empty (or stale
    /// entries cleared) — unreachable pairs are *left* at [`NO_ROUTE`],
    /// not overwritten.
    ///
    /// This fuses SPF and the FIB "transpose": the tree rooted at `t`
    /// contains, for every router `u`, the next hop `u` uses toward `t`,
    /// so each Dijkstra writes one column of the plane.
    pub fn fill_slice(&mut self, g: &Graph, weights: &[f64], slice: usize, ws: &mut SpfWorkspace) {
        self.plane_mut(slice).fill(g, weights, ws);
    }

    /// The mask-aware sibling of [`SpliceFib::fill_slice`]: run the n
    /// destination-rooted Dijkstras over the `mask`-up subgraph and write
    /// every column back whole. Unlike `fill_slice` this overwrites stale
    /// entries (each column lands via [`SpliceFib::patch_column`]), so it
    /// also serves as the full-rebuild path for strategies without delta
    /// repair.
    pub fn fill_slice_masked(
        &mut self,
        g: &Graph,
        weights: &[f64],
        slice: usize,
        mask: &EdgeMask,
        ws: &mut SpfWorkspace,
    ) {
        self.plane_mut(slice).fill_masked(g, weights, mask, ws);
    }

    /// A mutable view of plane `slice` — the borrow the per-plane
    /// fill/patch primitives operate on.
    pub fn plane_mut(&mut self, slice: usize) -> PlaneMut<'_> {
        assert!(
            slice < self.k,
            "slice {slice} out of range (k = {})",
            self.k
        );
        let len = self.n * self.n;
        let start = slice * len;
        PlaneMut {
            n: self.n,
            next_hop: &mut self.next_hop[start..start + len],
            out_edge: &mut self.out_edge[start..start + len],
        }
    }

    /// Every plane as an independent mutable view, in slice order.
    ///
    /// The views borrow pairwise-disjoint regions of the two slabs, so
    /// they can be moved to worker threads and patched concurrently —
    /// each thread owns its slice's forwarding state outright, and the
    /// "merge" back into the arena is the no-op of dropping the borrows.
    pub fn planes_mut(&mut self) -> Vec<PlaneMut<'_>> {
        let len = self.n * self.n;
        self.next_hop
            .chunks_mut(len)
            .zip(self.out_edge.chunks_mut(len))
            .map(|(next_hop, out_edge)| PlaneMut {
                n: self.n,
                next_hop,
                out_edge,
            })
            .collect()
    }

    /// A new arena holding copies of the first `k` planes — the starting
    /// point for an incremental repair, which then patches only the
    /// columns an event actually touched. The copy is two `memcpy`s; no
    /// shortest-path work happens here.
    pub fn clone_prefix(&self, k: usize) -> SpliceFib {
        assert!(k <= self.k, "prefix {k} exceeds arena k = {}", self.k);
        let len = k * self.n * self.n;
        SpliceFib {
            k,
            n: self.n,
            next_hop: self.next_hop[..len].into(),
            out_edge: self.out_edge[..len].into(),
        }
    }

    /// Overwrite this arena with the first `self.k` planes of `src`
    /// without reallocating — the recycling counterpart of
    /// [`SpliceFib::clone_prefix`] for a long-running control plane,
    /// where retired snapshots are reused as repair scratch instead of
    /// allocating a fresh `k·n²` arena per event batch.
    pub fn copy_from(&mut self, src: &SpliceFib) {
        assert_eq!(self.n, src.n, "arena shape mismatch: n differs");
        assert!(
            self.k <= src.k,
            "cannot copy {} planes from an arena holding {}",
            self.k,
            src.k
        );
        let len = self.k * self.n * self.n;
        self.next_hop.copy_from_slice(&src.next_hop[..len]);
        self.out_edge.copy_from_slice(&src.out_edge[..len]);
    }

    /// Overwrite the whole `(slice, dst)` column from a router-indexed
    /// parent array — the shape [`SpfWorkspace::parents`] produces. This
    /// is the repair path's write primitive, the column-granular
    /// counterpart of [`SpliceFib::fill_slice`].
    pub fn patch_column(
        &mut self,
        slice: usize,
        dst: NodeId,
        parents: &[Option<(NodeId, EdgeId)>],
    ) {
        self.plane_mut(slice).patch_column(dst, parents);
    }

    /// Incrementally repair plane `slice` after the links in
    /// `newly_failed` went down. `mask` is the new cumulative failure mask
    /// (with `newly_failed` already failed) and `weights` the slice's
    /// weight vector; the plane must hold the forwarding state that was
    /// correct immediately before the event.
    ///
    /// Columns whose tree does not cross a newly failed link are skipped
    /// after an O(n) scan — their entries are provably unchanged. Touched
    /// columns are loaded into `ws`, repaired via
    /// [`SpfWorkspace::repair_failures`], and written back whole.
    pub fn patch_slice_failures(
        &mut self,
        g: &Graph,
        weights: &[f64],
        slice: usize,
        mask: &EdgeMask,
        newly_failed: &[EdgeId],
        ws: &mut SpfWorkspace,
    ) -> RepairStats {
        self.plane_mut(slice)
            .patch_failures(g, weights, mask, newly_failed, ws)
    }

    /// Incrementally repair plane `slice` after `edge`'s weight changed
    /// from `old_weight` to `weights[edge]` (`weights` is the slice's new
    /// vector). Weight increases skip columns that do not route over
    /// `edge`; decreases probe every column, but a probe that changes
    /// nothing costs one relaxation and skips the write-back.
    pub fn patch_slice_reweight(
        &mut self,
        g: &Graph,
        weights: &[f64],
        slice: usize,
        mask: &EdgeMask,
        edge: EdgeId,
        old_weight: f64,
        ws: &mut SpfWorkspace,
    ) -> RepairStats {
        self.plane_mut(slice)
            .patch_reweight(g, weights, mask, edge, old_weight, ws)
    }

    /// Pack legacy per-slice [`RoutingTables`] into an arena.
    ///
    /// # Panics
    /// Panics if `tables` is empty or the slices disagree on router count.
    pub fn from_tables<'a, I>(tables: I) -> SpliceFib
    where
        I: IntoIterator<Item = &'a RoutingTables>,
    {
        let tables: Vec<&RoutingTables> = tables.into_iter().collect();
        assert!(!tables.is_empty(), "need at least one slice");
        let n = tables[0].fibs.len();
        let mut arena = SpliceFib::empty(tables.len(), n);
        for (slice, rt) in tables.iter().enumerate() {
            assert_eq!(rt.fibs.len(), n, "slice {slice} router count");
            for (u, fib) in rt.fibs.iter().enumerate() {
                assert_eq!(fib.entries.len(), n, "router {u} entry count");
                for (t, entry) in fib.entries.iter().enumerate() {
                    if let Some((nh, e)) = entry {
                        let i = (slice * n + u) * n + t;
                        arena.next_hop[i] = nh.index() as u32;
                        arena.out_edge[i] = e.index() as u32;
                    }
                }
            }
        }
        arena
    }

    /// A read-only view of one slice's full n×n plane, for concurrent
    /// walkers: the view borrows the arena, so any number of data-plane
    /// threads can hold planes of one `Arc<SpliceFib>` snapshot while the
    /// control plane repairs a *different* (cloned) arena and publishes
    /// it through a [`crate::view::FibCell`].
    #[inline]
    pub fn plane(&self, slice: usize) -> Plane<'_> {
        assert!(
            slice < self.k,
            "slice {slice} out of range (k = {})",
            self.k
        );
        let start = self.idx(slice, 0, 0);
        let len = self.n * self.n;
        Plane {
            n: self.n,
            next_hop: &self.next_hop[start..start + len],
            out_edge: &self.out_edge[start..start + len],
        }
    }

    /// The whole arena's raw slabs, `(next_hop, out_edge)`, both indexed
    /// by `(slice·n + router)·n + dst` with [`NO_ROUTE`] holes. This is
    /// the batch-forwarding fast path: a walker precomputes one flat
    /// plane base per packet (`slice·n·n + dst`) and advances with a
    /// single multiply-add per hop, re-deriving the base only when the
    /// packet switches slices.
    #[inline]
    pub fn slabs(&self) -> (&[u32], &[u32]) {
        (&self.next_hop, &self.out_edge)
    }

    /// Materialize one plane back into the legacy nested shape, for
    /// serialization and protocol-simulator comparisons.
    pub fn to_tables(&self, slice: usize) -> RoutingTables {
        assert!(
            slice < self.k,
            "slice {slice} out of range (k = {})",
            self.k
        );
        let fibs = (0..self.n)
            .map(|u| {
                let router = NodeId(u as u32);
                Fib {
                    router,
                    entries: (0..self.n)
                        .map(|t| self.lookup(slice, router, NodeId(t as u32)))
                        .collect(),
                }
            })
            .collect();
        RoutingTables { fibs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::dijkstra::all_destinations;
    use splice_graph::graph::from_edges;

    fn diamond() -> splice_graph::Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    fn legacy(g: &splice_graph::Graph, w: &[f64]) -> RoutingTables {
        RoutingTables::from_spts(&all_destinations(g, w))
    }

    #[test]
    fn fill_slice_matches_legacy_pipeline() {
        let g = diamond();
        let w = g.base_weights();
        let mut arena = SpliceFib::empty(1, g.node_count());
        let mut ws = SpfWorkspace::new();
        arena.fill_slice(&g, &w, 0, &mut ws);
        let rt = legacy(&g, &w);
        for u in g.nodes() {
            for t in g.nodes() {
                assert_eq!(arena.lookup(0, u, t), rt.fib(u).entries[t.index()]);
            }
        }
        assert_eq!(arena.to_tables(0), rt);
    }

    #[test]
    fn tables_roundtrip_is_lossless() {
        let g = diamond();
        let slices = [
            legacy(&g, &g.base_weights()),
            legacy(&g, &[1.0, 10.0, 2.0, 2.0]),
        ];
        let arena = SpliceFib::from_tables(slices.iter());
        assert_eq!(arena.k(), 2);
        assert_eq!(arena.to_tables(0), slices[0]);
        assert_eq!(arena.to_tables(1), slices[1]);
    }

    #[test]
    fn sentinel_represents_missing_entries() {
        let g = from_edges(3, &[(0, 1, 1.0)]); // node 2 isolated
        let mut arena = SpliceFib::empty(1, 3);
        let mut ws = SpfWorkspace::new();
        arena.fill_slice(&g, &g.base_weights(), 0, &mut ws);
        assert_eq!(arena.lookup(0, NodeId(0), NodeId(2)), None);
        assert_eq!(arena.lookup(0, NodeId(2), NodeId(0)), None);
        let (nh, oe) = arena.row(0, NodeId(2));
        assert!(nh.iter().all(|&v| v == NO_ROUTE));
        assert!(oe.iter().all(|&v| v == NO_ROUTE));
        assert_eq!(arena.installed(1), 2); // 0<->1 only
    }

    #[test]
    fn state_accounting_is_linear_in_k() {
        let n = 7;
        let a1 = SpliceFib::empty(1, n);
        let a4 = SpliceFib::empty(4, n);
        assert_eq!(a4.state_bytes(), 4 * a1.state_bytes());
        assert_eq!(a1.state_bytes(), 2 * n * n * 4);
        assert_eq!(a1.plane_bytes(), a1.state_bytes());
        assert_eq!(a4.plane_bytes(), a1.state_bytes());
    }

    /// Rebuild `slice` from scratch under `weights`/`mask` and assert the
    /// repaired arena plane equals it entry for entry.
    fn assert_plane_matches_rebuild(
        arena: &SpliceFib,
        g: &splice_graph::Graph,
        w: &[f64],
        slice: usize,
        mask: &EdgeMask,
    ) {
        let mut ws = SpfWorkspace::new();
        let mut fresh = SpliceFib::empty(1, g.node_count());
        for t in g.nodes() {
            ws.run(g, t, w, Some(mask));
            fresh.patch_column(0, t, ws.parents());
        }
        for u in g.nodes() {
            for t in g.nodes() {
                assert_eq!(
                    arena.lookup(slice, u, t),
                    fresh.lookup(0, u, t),
                    "router {u:?} toward {t:?}"
                );
            }
        }
    }

    #[test]
    fn fill_slice_masked_matches_rebuild_and_clears_stale_entries() {
        let g = diamond();
        let w = g.base_weights();
        let mut arena = SpliceFib::empty(1, g.node_count());
        let mut ws = SpfWorkspace::new();
        // Dirty plane: all-up fill, then refill under a failure.
        arena.fill_slice(&g, &w, 0, &mut ws);
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(0));
        arena.fill_slice_masked(&g, &w, 0, &mask, &mut ws);
        assert_plane_matches_rebuild(&arena, &g, &w, 0, &mask);
    }

    #[test]
    fn clone_prefix_copies_planes() {
        let g = diamond();
        let mut arena = SpliceFib::empty(2, g.node_count());
        let mut ws = SpfWorkspace::new();
        arena.fill_slice(&g, &g.base_weights(), 0, &mut ws);
        arena.fill_slice(&g, &[1.0, 10.0, 2.0, 2.0], 1, &mut ws);
        let one = arena.clone_prefix(1);
        assert_eq!(one.k(), 1);
        assert_eq!(one.to_tables(0), arena.to_tables(0));
        let both = arena.clone_prefix(2);
        assert_eq!(both, arena);
    }

    #[test]
    fn copy_from_recycles_an_arena_in_place() {
        let g = diamond();
        let mut arena = SpliceFib::empty(2, g.node_count());
        let mut ws = SpfWorkspace::new();
        arena.fill_slice(&g, &g.base_weights(), 0, &mut ws);
        arena.fill_slice(&g, &[1.0, 10.0, 2.0, 2.0], 1, &mut ws);
        // A stale retired arena of the same shape becomes a copy.
        let mut recycled = SpliceFib::empty(2, g.node_count());
        recycled.copy_from(&arena);
        assert_eq!(recycled, arena);
        // A smaller-k arena takes the prefix, like clone_prefix.
        let mut prefix = SpliceFib::empty(1, g.node_count());
        prefix.copy_from(&arena);
        assert_eq!(prefix, arena.clone_prefix(1));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_from_rejects_mismatched_n() {
        let mut dst = SpliceFib::empty(1, 3);
        dst.copy_from(&SpliceFib::empty(1, 4));
    }

    #[test]
    fn patch_column_roundtrips_workspace_parents() {
        let g = diamond();
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        let mut direct = SpliceFib::empty(1, g.node_count());
        direct.fill_slice(&g, &w, 0, &mut ws);
        let mut patched = SpliceFib::empty(1, g.node_count());
        for t in g.nodes() {
            ws.run(&g, t, &w, None);
            patched.patch_column(0, t, ws.parents());
        }
        assert_eq!(patched, direct);
    }

    #[test]
    fn patch_slice_failures_matches_rebuild_and_skips_untouched() {
        let g = diamond();
        let w = g.base_weights();
        for fail in g.edge_ids() {
            let mut arena = SpliceFib::empty(1, g.node_count());
            let mut ws = SpfWorkspace::new();
            arena.fill_slice(&g, &w, 0, &mut ws);
            let mut mask = EdgeMask::all_up(g.edge_count());
            mask.fail(fail);
            let stats = arena.patch_slice_failures(&g, &w, 0, &mask, &[fail], &mut ws);
            assert_eq!(
                stats.patched_columns + stats.skipped_columns,
                g.node_count(),
                "every column accounted for"
            );
            assert_plane_matches_rebuild(&arena, &g, &w, 0, &mask);
        }
    }

    #[test]
    fn patch_slice_reweight_matches_rebuild_both_directions() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        for edge in g.edge_ids() {
            for factor in [4.0, 0.3] {
                let old = g.base_weights();
                let mut new_w = old.clone();
                new_w[edge.index()] *= factor;
                let mut arena = SpliceFib::empty(1, g.node_count());
                let mut ws = SpfWorkspace::new();
                arena.fill_slice(&g, &old, 0, &mut ws);
                arena.patch_slice_reweight(&g, &new_w, 0, &mask, edge, old[edge.index()], &mut ws);
                assert_plane_matches_rebuild(&arena, &g, &new_w, 0, &mask);
            }
        }
    }

    #[test]
    fn planes_mut_views_are_disjoint_and_complete() {
        let g = diamond();
        let w0 = g.base_weights();
        let w1 = [1.0, 10.0, 2.0, 2.0];
        // Fill through per-plane views handed out together (as the
        // parallel repair path does) ...
        let mut via_planes = SpliceFib::empty(2, g.node_count());
        {
            let mut planes = via_planes.planes_mut();
            assert_eq!(planes.len(), 2);
            let mut ws = SpfWorkspace::new();
            planes[0].fill(&g, &w0, &mut ws);
            planes[1].fill(&g, &w1, &mut ws);
        }
        // ... and through the classic arena-level calls; bit-identical.
        let mut direct = SpliceFib::empty(2, g.node_count());
        let mut ws = SpfWorkspace::new();
        direct.fill_slice(&g, &w0, 0, &mut ws);
        direct.fill_slice(&g, &w1, 1, &mut ws);
        assert_eq!(via_planes, direct);

        // Per-plane repair equals arena-level repair.
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(0));
        let stats_direct = direct.patch_slice_failures(&g, &w0, 0, &mask, &[EdgeId(0)], &mut ws);
        let stats_plane = {
            let mut planes = via_planes.planes_mut();
            planes[0].patch_failures(&g, &w0, &mask, &[EdgeId(0)], &mut ws)
        };
        assert_eq!(stats_plane, stats_direct);
        assert_eq!(via_planes, direct);
    }

    #[test]
    fn set_and_installed_counts() {
        let mut arena = SpliceFib::empty(2, 3);
        assert_eq!(arena.installed(2), 0);
        arena.set(1, NodeId(0), NodeId(2), Some((NodeId(1), EdgeId(0))));
        assert_eq!(arena.installed(1), 0, "prefix excludes plane 1");
        assert_eq!(arena.installed(2), 1);
        assert_eq!(arena.installed_for_router(1, NodeId(0)), 1);
        assert_eq!(
            arena.lookup(1, NodeId(0), NodeId(2)),
            Some((NodeId(1), EdgeId(0)))
        );
        arena.set(1, NodeId(0), NodeId(2), None);
        assert_eq!(arena.installed(2), 0);
    }
}
