//! The flat spliced-FIB arena: all k slices' forwarding state in one
//! contiguous slab.
//!
//! The paper's §4.2 scalability claim is that splicing state grows
//! linearly in k. This module makes that state a measurable object: a
//! [`SpliceFib`] holds `next_hop` and `out_edge` as two slice-major
//! `Box<[u32]>` slabs indexed O(1) by `(slice, router, dst)`, with
//! [`NO_ROUTE`] (`u32::MAX`) standing in for "no entry" — no nesting, no
//! per-entry `Option` overhead, no pointer chasing on the data-plane hot
//! path. A k-prefix of a splicing is literally the first k planes of the
//! slab, so prefix "views" share the arena instead of deep-cloning it.
//!
//! [`crate::fib::RoutingTables`] remains as the thin legacy type the
//! protocol simulator produces and serialization consumes;
//! [`SpliceFib::from_tables`] / [`SpliceFib::to_tables`] convert between
//! the two losslessly.

use crate::fib::{Fib, RoutingTables};
use splice_graph::dijkstra::SpfWorkspace;
use splice_graph::{EdgeId, Graph, NodeId};

/// Sentinel for "no installed entry" in both slabs. Valid node and edge
/// ids are dense and far below `u32::MAX`, so the sentinel can never
/// collide with real state.
pub const NO_ROUTE: u32 = u32::MAX;

/// All routers' forwarding state for all k slices, as one flat arena.
///
/// Layout: `plane(slice) → row(router) → column(dst)`, i.e. entry
/// `(slice, router, dst)` lives at `(slice·n + router)·n + dst`. One
/// router's per-destination row is therefore contiguous, and one slice's
/// full table (a "plane") is a contiguous `n·n` block — which is what
/// makes zero-copy k-prefix views possible.
#[derive(Clone, Debug, PartialEq)]
pub struct SpliceFib {
    k: usize,
    n: usize,
    next_hop: Box<[u32]>,
    out_edge: Box<[u32]>,
}

impl SpliceFib {
    /// An arena for `k` slices over `n` routers with no installed entries.
    pub fn empty(k: usize, n: usize) -> SpliceFib {
        let len = k * n * n;
        SpliceFib {
            k,
            n,
            next_hop: vec![NO_ROUTE; len].into_boxed_slice(),
            out_edge: vec![NO_ROUTE; len].into_boxed_slice(),
        }
    }

    #[inline]
    fn idx(&self, slice: usize, router: usize, dst: usize) -> usize {
        debug_assert!(slice < self.k && router < self.n && dst < self.n);
        (slice * self.n + router) * self.n + dst
    }

    /// Next hop and outgoing edge of `router` toward `dst` in `slice` —
    /// Algorithm 1's `Lookup(dst, slice)`, one multiply-add and two loads.
    #[inline]
    pub fn lookup(&self, slice: usize, router: NodeId, dst: NodeId) -> Option<(NodeId, EdgeId)> {
        let i = self.idx(slice, router.index(), dst.index());
        let nh = self.next_hop[i];
        if nh == NO_ROUTE {
            None
        } else {
            Some((NodeId(nh), EdgeId(self.out_edge[i])))
        }
    }

    /// Install (or clear) one entry.
    pub fn set(
        &mut self,
        slice: usize,
        router: NodeId,
        dst: NodeId,
        entry: Option<(NodeId, EdgeId)>,
    ) {
        let i = self.idx(slice, router.index(), dst.index());
        match entry {
            Some((nh, e)) => {
                self.next_hop[i] = nh.index() as u32;
                self.out_edge[i] = e.index() as u32;
            }
            None => {
                self.next_hop[i] = NO_ROUTE;
                self.out_edge[i] = NO_ROUTE;
            }
        }
    }

    /// Number of slice planes in the arena.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of routers (= destinations) per plane.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total arena footprint in bytes — the measured §4.2 state size.
    /// Exactly `k · n² · 2 · 4` bytes: linear in k by construction.
    pub fn state_bytes(&self) -> usize {
        (self.next_hop.len() + self.out_edge.len()) * std::mem::size_of::<u32>()
    }

    /// Bytes of a single slice plane (both slabs).
    pub fn plane_bytes(&self) -> usize {
        2 * self.n * self.n * std::mem::size_of::<u32>()
    }

    /// Installed (non-sentinel) entries across the first `k_prefix`
    /// planes — the entry-count state metric legacy
    /// [`RoutingTables::total_state`] reported.
    pub fn installed(&self, k_prefix: usize) -> usize {
        assert!(k_prefix <= self.k);
        let end = k_prefix * self.n * self.n;
        self.next_hop[..end]
            .iter()
            .filter(|&&v| v != NO_ROUTE)
            .count()
    }

    /// Installed entries in `router`'s row of `slice`.
    pub fn installed_for_router(&self, slice: usize, router: NodeId) -> usize {
        let start = self.idx(slice, router.index(), 0);
        self.next_hop[start..start + self.n]
            .iter()
            .filter(|&&v| v != NO_ROUTE)
            .count()
    }

    /// `router`'s contiguous per-destination rows in `slice`, raw:
    /// `(next_hop, out_edge)`, both dst-indexed with [`NO_ROUTE`] holes.
    pub fn row(&self, slice: usize, router: NodeId) -> (&[u32], &[u32]) {
        let start = self.idx(slice, router.index(), 0);
        (
            &self.next_hop[start..start + self.n],
            &self.out_edge[start..start + self.n],
        )
    }

    /// Run destination-rooted Dijkstra for every node under `weights` and
    /// install the resulting next hops directly into plane `slice`,
    /// reusing `ws` across all n roots. The plane must be empty (or stale
    /// entries cleared) — unreachable pairs are *left* at [`NO_ROUTE`],
    /// not overwritten.
    ///
    /// This fuses SPF and the FIB "transpose": the tree rooted at `t`
    /// contains, for every router `u`, the next hop `u` uses toward `t`,
    /// so each Dijkstra writes one column of the plane.
    pub fn fill_slice(&mut self, g: &Graph, weights: &[f64], slice: usize, ws: &mut SpfWorkspace) {
        assert_eq!(self.n, g.node_count(), "arena built for a different graph");
        assert!(
            slice < self.k,
            "slice {slice} out of range (k = {})",
            self.k
        );
        for t in g.nodes() {
            ws.run(g, t, weights, None);
            let parents = ws.parents();
            let base = slice * self.n * self.n + t.index();
            for (u, parent) in parents.iter().enumerate() {
                if let Some((nh, e)) = parent {
                    let i = base + u * self.n;
                    self.next_hop[i] = nh.index() as u32;
                    self.out_edge[i] = e.index() as u32;
                }
            }
        }
    }

    /// Pack legacy per-slice [`RoutingTables`] into an arena.
    ///
    /// # Panics
    /// Panics if `tables` is empty or the slices disagree on router count.
    pub fn from_tables<'a, I>(tables: I) -> SpliceFib
    where
        I: IntoIterator<Item = &'a RoutingTables>,
    {
        let tables: Vec<&RoutingTables> = tables.into_iter().collect();
        assert!(!tables.is_empty(), "need at least one slice");
        let n = tables[0].fibs.len();
        let mut arena = SpliceFib::empty(tables.len(), n);
        for (slice, rt) in tables.iter().enumerate() {
            assert_eq!(rt.fibs.len(), n, "slice {slice} router count");
            for (u, fib) in rt.fibs.iter().enumerate() {
                assert_eq!(fib.entries.len(), n, "router {u} entry count");
                for (t, entry) in fib.entries.iter().enumerate() {
                    if let Some((nh, e)) = entry {
                        let i = (slice * n + u) * n + t;
                        arena.next_hop[i] = nh.index() as u32;
                        arena.out_edge[i] = e.index() as u32;
                    }
                }
            }
        }
        arena
    }

    /// Materialize one plane back into the legacy nested shape, for
    /// serialization and protocol-simulator comparisons.
    pub fn to_tables(&self, slice: usize) -> RoutingTables {
        assert!(
            slice < self.k,
            "slice {slice} out of range (k = {})",
            self.k
        );
        let fibs = (0..self.n)
            .map(|u| {
                let router = NodeId(u as u32);
                Fib {
                    router,
                    entries: (0..self.n)
                        .map(|t| self.lookup(slice, router, NodeId(t as u32)))
                        .collect(),
                }
            })
            .collect();
        RoutingTables { fibs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::dijkstra::all_destinations;
    use splice_graph::graph::from_edges;

    fn diamond() -> splice_graph::Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    fn legacy(g: &splice_graph::Graph, w: &[f64]) -> RoutingTables {
        RoutingTables::from_spts(&all_destinations(g, w))
    }

    #[test]
    fn fill_slice_matches_legacy_pipeline() {
        let g = diamond();
        let w = g.base_weights();
        let mut arena = SpliceFib::empty(1, g.node_count());
        let mut ws = SpfWorkspace::new();
        arena.fill_slice(&g, &w, 0, &mut ws);
        let rt = legacy(&g, &w);
        for u in g.nodes() {
            for t in g.nodes() {
                assert_eq!(arena.lookup(0, u, t), rt.fib(u).entries[t.index()]);
            }
        }
        assert_eq!(arena.to_tables(0), rt);
    }

    #[test]
    fn tables_roundtrip_is_lossless() {
        let g = diamond();
        let slices = [
            legacy(&g, &g.base_weights()),
            legacy(&g, &[1.0, 10.0, 2.0, 2.0]),
        ];
        let arena = SpliceFib::from_tables(slices.iter());
        assert_eq!(arena.k(), 2);
        assert_eq!(arena.to_tables(0), slices[0]);
        assert_eq!(arena.to_tables(1), slices[1]);
    }

    #[test]
    fn sentinel_represents_missing_entries() {
        let g = from_edges(3, &[(0, 1, 1.0)]); // node 2 isolated
        let mut arena = SpliceFib::empty(1, 3);
        let mut ws = SpfWorkspace::new();
        arena.fill_slice(&g, &g.base_weights(), 0, &mut ws);
        assert_eq!(arena.lookup(0, NodeId(0), NodeId(2)), None);
        assert_eq!(arena.lookup(0, NodeId(2), NodeId(0)), None);
        let (nh, oe) = arena.row(0, NodeId(2));
        assert!(nh.iter().all(|&v| v == NO_ROUTE));
        assert!(oe.iter().all(|&v| v == NO_ROUTE));
        assert_eq!(arena.installed(1), 2); // 0<->1 only
    }

    #[test]
    fn state_accounting_is_linear_in_k() {
        let n = 7;
        let a1 = SpliceFib::empty(1, n);
        let a4 = SpliceFib::empty(4, n);
        assert_eq!(a4.state_bytes(), 4 * a1.state_bytes());
        assert_eq!(a1.state_bytes(), 2 * n * n * 4);
        assert_eq!(a1.plane_bytes(), a1.state_bytes());
        assert_eq!(a4.plane_bytes(), a1.state_bytes());
    }

    #[test]
    fn set_and_installed_counts() {
        let mut arena = SpliceFib::empty(2, 3);
        assert_eq!(arena.installed(2), 0);
        arena.set(1, NodeId(0), NodeId(2), Some((NodeId(1), EdgeId(0))));
        assert_eq!(arena.installed(1), 0, "prefix excludes plane 1");
        assert_eq!(arena.installed(2), 1);
        assert_eq!(arena.installed_for_router(1, NodeId(0)), 1);
        assert_eq!(
            arena.lookup(1, NodeId(0), NodeId(2)),
            Some((NodeId(1), EdgeId(0)))
        );
        arena.set(1, NodeId(0), NodeId(2), None);
        assert_eq!(arena.installed(2), 0);
    }
}
