//! Shortest-path-first: from a converged LSDB to routing tables.
//!
//! This is the glue a real router runs after flooding quiesces: rebuild
//! the instance's weight vector from the database, run Dijkstra per
//! destination, install FIBs.

use crate::arena::{PlaneMut, RepairStats, SpliceFib};
use crate::fib::RoutingTables;
use crate::lsdb::LinkStateDb;
use splice_graph::dijkstra::{all_destinations, SpfWorkspace};
use splice_graph::{EdgeId, EdgeMask, Graph};
// Re-exported so downstream crates (splice-core) can build flight events,
// registries, and latency histograms without a direct telemetry
// dependency.
pub use splice_telemetry::{FlightEvent, FlightRecorder, Histogram, Registry};
use std::sync::Arc;
use std::time::Instant;

/// Timing handles for the SPF → FIB pipeline. One observation lands in
/// each histogram per slice computed, so after a Monte-Carlo run the
/// distributions describe per-slice build cost across all trials.
#[derive(Clone, Debug)]
pub struct SpfTelemetry {
    /// Wall time of the all-destinations Dijkstra pass for one slice. On
    /// the fused arena path ([`spf_fill_arena`]) this covers the whole
    /// per-slice build, FIB emission included.
    pub spf_seconds: Arc<Histogram>,
    /// Wall time of transposing SPTs into installed FIBs for one slice
    /// (legacy [`RoutingTables`] path only; the arena path fuses this
    /// into `spf_seconds`).
    pub fib_build_seconds: Arc<Histogram>,
    /// Measured [`SpliceFib`] arena footprint in bytes, one observation
    /// per splicing build — the §4.2 state-size accounting.
    pub arena_bytes: Arc<Histogram>,
    /// Wall time of one incremental slice-plane repair
    /// ([`SpliceFib::patch_slice_failures`] /
    /// [`SpliceFib::patch_slice_reweight`]), one observation per repaired
    /// plane — the counterpart of `spf_seconds` for the delta-SPF path.
    pub spf_repair_seconds: Arc<Histogram>,
    /// Re-relaxed nodes per repaired plane (the repair frontier). Small
    /// frontiers are the whole point of repairing instead of rebuilding;
    /// this histogram is the evidence.
    pub spf_repair_frontier: Arc<Histogram>,
    /// When set, every repaired plane also drops one structured event
    /// into the flight recorder (slice, frontier, patched columns), so a
    /// failure's dump shows what the repair engine just did.
    pub flight: Option<FlightRecorder>,
}

impl SpfTelemetry {
    /// Register (or re-acquire) the SPF timing histograms in `registry`,
    /// labeled for the default perturbed-SPF construction.
    pub fn register(registry: &Registry) -> SpfTelemetry {
        SpfTelemetry::register_for_strategy(registry, "perturbed-spf")
    }

    /// Register the SPF timing histograms with the state and repair
    /// series labeled `strategy="<name>"`, so a cross-strategy sweep
    /// keeps one series per construction instead of aggregating them.
    /// The per-slice SPF/FIB timings stay unlabeled: they time the same
    /// Dijkstra substrate whichever strategy drives it.
    pub fn register_for_strategy(registry: &Registry, strategy: &str) -> SpfTelemetry {
        let labels: &[(&str, &str)] = &[("strategy", strategy)];
        SpfTelemetry {
            spf_seconds: registry.histogram_seconds(
                "splice_spf_seconds",
                "Per-slice all-destinations shortest-path (Dijkstra) wall time",
            ),
            fib_build_seconds: registry.histogram_seconds(
                "splice_fib_build_seconds",
                "Per-slice FIB construction (SPT transpose) wall time",
            ),
            arena_bytes: registry.histogram_with(
                "splice_fib_arena_bytes",
                "Flat spliced-FIB arena size in bytes, one observation per splicing build",
                labels,
            ),
            spf_repair_seconds: registry.histogram_seconds_with(
                "splice_spf_repair_seconds",
                "Per-plane incremental SPF repair wall time",
                labels,
            ),
            spf_repair_frontier: registry.histogram_with(
                "splice_spf_repair_frontier",
                "Re-relaxed nodes per repaired slice plane (repair frontier size)",
                labels,
            ),
            flight: None,
        }
    }

    /// Also record per-plane repair events into `flight`.
    pub fn with_flight(mut self, flight: FlightRecorder) -> SpfTelemetry {
        self.flight = Some(flight);
        self
    }
}

// The batched repair path shares one `SpfTelemetry` across its per-plane
// worker threads: every field is an `Arc` over atomics (or a
// `FlightRecorder`, itself atomics plus mutexed slots). Keep that
// property checked at compile time.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<SpfTelemetry>();
};

/// Compute the routing tables of `instance` from a (converged) database.
///
/// Uses the database's reconstructed weight vector; during partial
/// convergence un-advertised links keep their base weights, exactly as
/// [`LinkStateDb::instance_weights`] documents.
pub fn spf(g: &Graph, db: &LinkStateDb, instance: usize) -> RoutingTables {
    let weights = db.instance_weights(g, instance);
    RoutingTables::from_spts(&all_destinations(g, &weights))
}

/// Compute routing tables directly from a weight vector, bypassing the
/// protocol machinery — the fast path the Monte-Carlo simulator uses when
/// protocol dynamics are not under study.
pub fn spf_from_weights(g: &Graph, weights: &[f64]) -> RoutingTables {
    RoutingTables::from_spts(&all_destinations(g, weights))
}

/// [`spf_from_weights`] with optional per-phase timing. With `None` this
/// is exactly the untimed fast path — callers thread an `Option` through
/// so telemetry stays free when disabled.
pub fn spf_from_weights_timed(
    g: &Graph,
    weights: &[f64],
    telemetry: Option<&SpfTelemetry>,
) -> RoutingTables {
    let Some(tel) = telemetry else {
        return spf_from_weights(g, weights);
    };
    let t0 = Instant::now();
    let spts = all_destinations(g, weights);
    tel.spf_seconds.record_duration(t0.elapsed());
    let t1 = Instant::now();
    let tables = RoutingTables::from_spts(&spts);
    tel.fib_build_seconds.record_duration(t1.elapsed());
    tables
}

/// The arena fast path: run the n destination-rooted Dijkstras for one
/// slice and emit next hops straight into plane `slice` of `fib`, reusing
/// `ws` across roots (and across slices, when the caller holds it).
///
/// With telemetry enabled, one `splice_spf_seconds` observation covers
/// the fused SPF + emission pass. Timing is observation only — the
/// installed entries are bit-identical either way.
pub fn spf_fill_arena(
    g: &Graph,
    weights: &[f64],
    fib: &mut SpliceFib,
    slice: usize,
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) {
    spf_fill_plane(g, weights, &mut fib.plane_mut(slice), slice, ws, telemetry)
}

/// [`spf_fill_arena`] on an already-borrowed [`PlaneMut`] — the form the
/// parallel batch-repair workers call, where each thread holds one
/// plane's view. `slice` only labels the flight event.
pub fn spf_fill_plane(
    g: &Graph,
    weights: &[f64],
    plane: &mut PlaneMut<'_>,
    slice: usize,
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) {
    let Some(tel) = telemetry else {
        plane.fill(g, weights, ws);
        return;
    };
    let t0 = Instant::now();
    plane.fill(g, weights, ws);
    tel.spf_seconds.record_duration(t0.elapsed());
    if let Some(flight) = &tel.flight {
        flight.record(FlightEvent::new("spf", "fill_slice").field("slice", slice as u64));
    }
}

/// The mask-aware counterpart of [`spf_fill_arena`], used by rebuild-only
/// strategies: refill plane `slice` from scratch over the `mask`-up
/// subgraph, overwriting stale entries. One `splice_spf_seconds`
/// observation covers the pass.
pub fn spf_refill_arena(
    g: &Graph,
    weights: &[f64],
    fib: &mut SpliceFib,
    slice: usize,
    mask: &EdgeMask,
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) {
    spf_refill_plane(
        g,
        weights,
        &mut fib.plane_mut(slice),
        slice,
        mask,
        ws,
        telemetry,
    )
}

/// [`spf_refill_arena`] on an already-borrowed [`PlaneMut`].
pub fn spf_refill_plane(
    g: &Graph,
    weights: &[f64],
    plane: &mut PlaneMut<'_>,
    slice: usize,
    mask: &EdgeMask,
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) {
    let Some(tel) = telemetry else {
        plane.fill_masked(g, weights, mask, ws);
        return;
    };
    let t0 = Instant::now();
    plane.fill_masked(g, weights, mask, ws);
    tel.spf_seconds.record_duration(t0.elapsed());
    if let Some(flight) = &tel.flight {
        flight.record(FlightEvent::new("spf", "refill_slice").field("slice", slice as u64));
    }
}

/// The delta-SPF counterpart of [`spf_fill_arena`]: repair plane `slice`
/// in place after the links in `newly_failed` went down, with optional
/// per-plane timing and frontier-size observations. Entries are
/// bit-identical with telemetry on or off.
#[allow(clippy::too_many_arguments)]
pub fn spf_repair_arena_failures(
    g: &Graph,
    weights: &[f64],
    fib: &mut SpliceFib,
    slice: usize,
    mask: &EdgeMask,
    newly_failed: &[EdgeId],
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) -> RepairStats {
    spf_repair_plane_failures(
        g,
        weights,
        &mut fib.plane_mut(slice),
        slice,
        mask,
        newly_failed,
        ws,
        telemetry,
    )
}

/// [`spf_repair_arena_failures`] on an already-borrowed [`PlaneMut`] —
/// the form the parallel batch-repair workers call.
#[allow(clippy::too_many_arguments)]
pub fn spf_repair_plane_failures(
    g: &Graph,
    weights: &[f64],
    plane: &mut PlaneMut<'_>,
    slice: usize,
    mask: &EdgeMask,
    newly_failed: &[EdgeId],
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) -> RepairStats {
    let Some(tel) = telemetry else {
        return plane.patch_failures(g, weights, mask, newly_failed, ws);
    };
    let t0 = Instant::now();
    let stats = plane.patch_failures(g, weights, mask, newly_failed, ws);
    tel.spf_repair_seconds.record_duration(t0.elapsed());
    tel.spf_repair_frontier.record(stats.frontier_nodes as u64);
    if let Some(flight) = &tel.flight {
        flight.record(
            FlightEvent::new("repair", "patch_failures")
                .field("slice", slice as u64)
                .field("frontier", stats.frontier_nodes as u64)
                .field("patched", stats.patched_columns as u64)
                .field("skipped", stats.skipped_columns as u64),
        );
    }
    stats
}

/// [`spf_repair_arena_failures`]'s sibling for a single-link weight
/// change: `weights` is the slice's new vector, `old_weight` the value
/// `edge` had when the plane was last correct.
#[allow(clippy::too_many_arguments)]
pub fn spf_repair_arena_reweight(
    g: &Graph,
    weights: &[f64],
    fib: &mut SpliceFib,
    slice: usize,
    mask: &EdgeMask,
    edge: EdgeId,
    old_weight: f64,
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) -> RepairStats {
    spf_repair_plane_reweight(
        g,
        weights,
        &mut fib.plane_mut(slice),
        slice,
        mask,
        edge,
        old_weight,
        ws,
        telemetry,
    )
}

/// [`spf_repair_arena_reweight`] on an already-borrowed [`PlaneMut`].
#[allow(clippy::too_many_arguments)]
pub fn spf_repair_plane_reweight(
    g: &Graph,
    weights: &[f64],
    plane: &mut PlaneMut<'_>,
    slice: usize,
    mask: &EdgeMask,
    edge: EdgeId,
    old_weight: f64,
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) -> RepairStats {
    let Some(tel) = telemetry else {
        return plane.patch_reweight(g, weights, mask, edge, old_weight, ws);
    };
    let t0 = Instant::now();
    let stats = plane.patch_reweight(g, weights, mask, edge, old_weight, ws);
    tel.spf_repair_seconds.record_duration(t0.elapsed());
    tel.spf_repair_frontier.record(stats.frontier_nodes as u64);
    if let Some(flight) = &tel.flight {
        flight.record(
            FlightEvent::new("repair", "patch_reweight")
                .field("slice", slice as u64)
                .field("frontier", stats.frontier_nodes as u64)
                .field("patched", stats.patched_columns as u64)
                .field("skipped", stats.skipped_columns as u64),
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::converge_instance;
    use splice_graph::graph::from_edges;
    use splice_graph::NodeId;

    #[test]
    fn spf_after_flooding_matches_direct_computation() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let perturbed = vec![1.0, 10.0, 2.0, 2.0]; // push 0->3 via 2
        let (dbs, _) = converge_instance(&g, 0, &perturbed, 1);
        let from_protocol = spf(&g, &dbs[0], 0);
        let direct = spf_from_weights(&g, &perturbed);
        assert_eq!(from_protocol, direct);
        assert_eq!(
            from_protocol.next_hop(NodeId(0), NodeId(3)),
            Some(NodeId(2))
        );
    }

    #[test]
    fn timed_spf_matches_untimed_and_records() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let w = g.base_weights();
        let reg = Registry::new();
        let tel = SpfTelemetry::register(&reg);
        let timed = spf_from_weights_timed(&g, &w, Some(&tel));
        assert_eq!(
            timed,
            spf_from_weights(&g, &w),
            "timing must not change tables"
        );
        assert_eq!(tel.spf_seconds.count(), 1);
        assert_eq!(tel.fib_build_seconds.count(), 1);
        assert_eq!(
            spf_from_weights_timed(&g, &w, None),
            timed,
            "disabled telemetry is the identity"
        );
        assert_eq!(tel.spf_seconds.count(), 1, "None must not record");
    }

    #[test]
    fn arena_fill_matches_table_pipeline() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let w = vec![1.0, 10.0, 2.0, 2.0];
        let mut fib = SpliceFib::empty(1, g.node_count());
        let mut ws = SpfWorkspace::new();
        let reg = Registry::new();
        let tel = SpfTelemetry::register(&reg);
        spf_fill_arena(&g, &w, &mut fib, 0, &mut ws, Some(&tel));
        assert_eq!(fib.to_tables(0), spf_from_weights(&g, &w));
        assert_eq!(tel.spf_seconds.count(), 1, "fused pass records once");
        tel.arena_bytes.record(fib.state_bytes() as u64);
        assert!(reg.render_prometheus().contains("splice_fib_arena_bytes"));
    }

    #[test]
    fn repaired_arena_matches_full_rebuild_and_records() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        let mut fib = SpliceFib::empty(1, g.node_count());
        spf_fill_arena(&g, &w, &mut fib, 0, &mut ws, None);
        let reg = Registry::new();
        let tel = SpfTelemetry::register(&reg);
        let failed = splice_graph::EdgeId(0);
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(failed);
        let stats =
            spf_repair_arena_failures(&g, &w, &mut fib, 0, &mask, &[failed], &mut ws, Some(&tel));
        assert!(stats.patched_columns > 0);
        assert_eq!(tel.spf_repair_seconds.count(), 1);
        assert_eq!(tel.spf_repair_frontier.count(), 1);
        // The repaired plane equals a from-scratch build on the failed
        // topology.
        let mut fresh = SpliceFib::empty(1, g.node_count());
        for t in g.nodes() {
            ws.run(&g, t, &w, Some(&mask));
            fresh.patch_column(0, t, ws.parents());
        }
        assert_eq!(fib, fresh);
        assert!(reg
            .render_prometheus()
            .contains("splice_spf_repair_seconds"));
    }

    #[test]
    fn repairs_land_in_the_flight_recorder_when_attached() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        let mut fib = SpliceFib::empty(1, g.node_count());
        let reg = Registry::new();
        let rec = FlightRecorder::new(16);
        let tel = SpfTelemetry::register(&reg).with_flight(rec.clone());
        spf_fill_arena(&g, &w, &mut fib, 0, &mut ws, Some(&tel));
        let failed = splice_graph::EdgeId(0);
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(failed);
        spf_repair_arena_failures(&g, &w, &mut fib, 0, &mask, &[failed], &mut ws, Some(&tel));
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event.kind, "spf");
        assert_eq!(events[0].event.name, "fill_slice");
        assert_eq!(events[1].event.kind, "repair");
        assert_eq!(events[1].event.name, "patch_failures");
        assert!(rec.to_jsonl().contains(r#""frontier":"#));
    }

    #[test]
    fn all_routers_compute_identical_tables() {
        let g = from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
            ],
        );
        let (dbs, _) = converge_instance(&g, 0, &g.base_weights(), 1);
        let reference = spf(&g, &dbs[0], 0);
        for db in &dbs[1..] {
            assert_eq!(spf(&g, db, 0), reference);
        }
    }
}
