//! Multi-topology routing: k independent instances over one topology.
//!
//! This is the deployment vehicle the paper names (§3.1.2: Cisco MTR /
//! RFC 4915): one physical network, k logical topologies, each with its
//! own weights, LSAs, SPF runs and FIBs. The [`ResourceUsage`] accounting
//! produced here is what substantiates §4.2's claim that splicing costs
//! grow *linearly* in k while path diversity grows exponentially.

use crate::fib::RoutingTables;
use crate::flooding::converge_instance;
use splice_graph::{Graph, NodeId};

/// k routing instances converged over one topology.
#[derive(Clone, Debug)]
pub struct MultiTopology {
    /// Per-instance weight vectors (index = instance / slice id).
    pub weights: Vec<Vec<f64>>,
    /// Per-instance routing tables.
    pub tables: Vec<RoutingTables>,
    /// Control-plane cost of converging all instances from scratch.
    pub usage: ResourceUsage,
}

/// Control-plane resource accounting for a converged multi-topology
/// deployment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResourceUsage {
    /// Total LSA transmissions across all instances.
    pub messages: usize,
    /// Total LSA bytes across all instances.
    pub bytes: usize,
    /// Total installed FIB entries across all routers and instances.
    pub fib_entries: usize,
    /// Total LSDB entries (LSAs stored) at one router, across instances.
    pub lsdb_entries: usize,
    /// SPF runs performed (n destinations × k instances).
    pub spf_runs: usize,
}

impl MultiTopology {
    /// Converge `k` instances, one per weight vector, running the full
    /// flooding protocol for each (so message accounting is measured, not
    /// estimated).
    pub fn converge(g: &Graph, weight_vectors: Vec<Vec<f64>>) -> MultiTopology {
        let mut usage = ResourceUsage::default();
        let mut tables = Vec::with_capacity(weight_vectors.len());
        for (instance, w) in weight_vectors.iter().enumerate() {
            assert_eq!(w.len(), g.edge_count(), "instance {instance} weight length");
            let (dbs, stats) = converge_instance(g, instance, w, 1);
            usage.messages += stats.messages;
            usage.bytes += stats.bytes;
            usage.lsdb_entries += dbs[0].len();
            let rt = crate::spf::spf(g, &dbs[0], instance);
            usage.spf_runs += g.node_count();
            usage.fib_entries += rt.total_state();
            tables.push(rt);
        }
        MultiTopology {
            weights: weight_vectors,
            tables,
            usage,
        }
    }

    /// Number of instances (slices).
    pub fn k(&self) -> usize {
        self.tables.len()
    }

    /// Next hop of `router` toward `dst` in `slice`.
    #[inline]
    pub fn next_hop(&self, slice: usize, router: NodeId, dst: NodeId) -> Option<NodeId> {
        self.tables[slice].next_hop(router, dst)
    }

    /// The successor sets toward `dst`: `succ[u]` = the distinct next hops
    /// node `u` has across all slices. This directed structure is what
    /// splicing reachability is computed on.
    pub fn successors_toward(&self, dst: NodeId, n: usize) -> Vec<Vec<NodeId>> {
        let mut succ = vec![Vec::new(); n];
        for rt in &self.tables {
            for (u, s) in succ.iter_mut().enumerate() {
                if let Some(nh) = rt.next_hop(NodeId(u as u32), dst) {
                    if !s.contains(&nh) {
                        s.push(nh);
                    }
                }
            }
        }
        succ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::graph::from_edges;

    fn diamond() -> Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    #[test]
    fn k_instances_with_distinct_routes() {
        let g = diamond();
        let w1 = g.base_weights(); // 0->3 via 1
        let w2 = vec![1.0, 10.0, 2.0, 2.0]; // 0->3 via 2
        let mt = MultiTopology::converge(&g, vec![w1, w2]);
        assert_eq!(mt.k(), 2);
        assert_eq!(mt.next_hop(0, NodeId(0), NodeId(3)), Some(NodeId(1)));
        assert_eq!(mt.next_hop(1, NodeId(0), NodeId(3)), Some(NodeId(2)));
    }

    #[test]
    fn successor_sets_union_slices() {
        let g = diamond();
        let w1 = g.base_weights();
        let w2 = vec![1.0, 10.0, 2.0, 2.0];
        let mt = MultiTopology::converge(&g, vec![w1, w2]);
        let succ = mt.successors_toward(NodeId(3), 4);
        let mut s0 = succ[0].clone();
        s0.sort();
        assert_eq!(s0, vec![NodeId(1), NodeId(2)]); // both slices' hops
        assert!(succ[3].is_empty()); // destination has no successor
    }

    #[test]
    fn resource_usage_is_linear_in_k() {
        let g = diamond();
        let mk = |k: usize| MultiTopology::converge(&g, (0..k).map(|_| g.base_weights()).collect());
        let (u1, u2, u4) = (mk(1).usage, mk(2).usage, mk(4).usage);
        assert_eq!(u2.messages, 2 * u1.messages);
        assert_eq!(u4.messages, 4 * u1.messages);
        assert_eq!(u2.fib_entries, 2 * u1.fib_entries);
        assert_eq!(u4.fib_entries, 4 * u1.fib_entries);
        assert_eq!(u2.lsdb_entries, 2 * u1.lsdb_entries);
        assert_eq!(u4.spf_runs, 4 * u1.spf_runs);
    }

    #[test]
    #[should_panic(expected = "weight length")]
    fn wrong_weight_vector_rejected() {
        let g = diamond();
        MultiTopology::converge(&g, vec![vec![1.0]]);
    }
}
