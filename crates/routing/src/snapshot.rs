//! Epoch-published FIB snapshots: the control-plane → data-plane
//! hand-off for a long-running daemon.
//!
//! A [`FibCell`] answers "what is the FIB *right now*" to a caller that
//! polls. A daemon's forwarding workers want the dual: "tell me when the
//! FIB *changes*", without the control plane ever blocking on a slow
//! worker. [`SnapshotHub`] layers that on top of a cell: `publish`
//! installs a new immutable `Arc<SpliceFib>` under a monotone **epoch**
//! and fans the `(epoch, fib)` pair out to every live subscriber over an
//! unbounded crossbeam channel; `subscribe` returns a [`SnapshotFeed`]
//! primed with the current snapshot.
//!
//! Backpressure policy: snapshots are *complete* state, not deltas, so a
//! subscriber that falls behind loses nothing by skipping intermediate
//! epochs. Feeds therefore drain their queue **latest-wins**
//! ([`SnapshotFeed::refresh`]), and the hub never blocks or drops a
//! publish — the queue holds at most a few superseded `Arc`s (two words
//! each) until the subscriber's next drain. Disconnected subscribers
//! (dropped feeds) are pruned on the next publish.
//!
//! This generalizes the batch engine's `RotatingSnapshots` test fixture:
//! where the batch engine hands workers a fixed snapshot sequence
//! upfront, the hub is the live-ordered version — every worker observes
//! a (possibly subsampled) prefix-ordered view of the published epochs,
//! and the torn-read impossibility argument of [`FibCell`] carries over
//! unchanged because arenas are never patched after publication.

use crate::arena::SpliceFib;
use crate::view::FibCell;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One published snapshot: the arena plus the epoch it was installed
/// under. Epochs are assigned by [`SnapshotHub::publish`] and strictly
/// increase; epoch 0 is the snapshot the hub was created with.
#[derive(Clone, Debug)]
pub struct SnapshotUpdate {
    /// Monotone publish counter (0 = initial snapshot).
    pub epoch: u64,
    /// The immutable FIB installed at that epoch.
    pub fib: Arc<SpliceFib>,
}

/// Single-writer, many-subscriber snapshot publication handle.
#[derive(Debug)]
pub struct SnapshotHub {
    cell: FibCell,
    subscribers: Mutex<Vec<Sender<SnapshotUpdate>>>,
}

impl SnapshotHub {
    /// A hub whose epoch-0 snapshot is `initial`.
    pub fn new(initial: Arc<SpliceFib>) -> SnapshotHub {
        SnapshotHub {
            cell: FibCell::new(initial),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// The current snapshot, for pollers (same contract as
    /// [`FibCell::load`]: hold the `Arc` for a whole burst).
    pub fn load(&self) -> Arc<SpliceFib> {
        self.cell.load()
    }

    /// The epoch of the currently installed snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.version()
    }

    /// Install `fib` as the new current snapshot and fan it out to all
    /// live subscribers; returns the new epoch. Never blocks on a
    /// subscriber: sends are unbounded, and dead subscribers are pruned.
    pub fn publish(&self, fib: Arc<SpliceFib>) -> u64 {
        let epoch = self.cell.publish(Arc::clone(&fib));
        let mut subs = self.subscribers.lock().expect("SnapshotHub lock poisoned");
        subs.retain(|tx| {
            tx.send(SnapshotUpdate {
                epoch,
                fib: Arc::clone(&fib),
            })
            .is_ok()
        });
        epoch
    }

    /// Register a new subscriber, primed with the current snapshot.
    ///
    /// The feed is guaranteed gap-free from its primed epoch: the prime
    /// is read under the subscriber lock, so any publish that the prime
    /// missed is already queued on the channel (a publish that lands
    /// between the cell install and the fan-out may be seen twice — once
    /// primed, once queued — which latest-wins draining makes harmless).
    pub fn subscribe(&self) -> SnapshotFeed {
        let (tx, rx) = unbounded();
        let mut subs = self.subscribers.lock().expect("SnapshotHub lock poisoned");
        let current = SnapshotUpdate {
            epoch: self.cell.version(),
            fib: self.cell.load(),
        };
        subs.push(tx);
        drop(subs);
        SnapshotFeed {
            rx,
            current,
            disconnected: false,
        }
    }

    /// How many subscribers are currently registered (dead ones linger
    /// until the next publish prunes them).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers
            .lock()
            .expect("SnapshotHub lock poisoned")
            .len()
    }
}

/// A subscriber's view of the published snapshot stream.
///
/// Owned by exactly one worker thread. The worker calls
/// [`SnapshotFeed::refresh`] at burst boundaries (cheap: a non-blocking
/// channel drain) or [`SnapshotFeed::wait_newer`] when it has nothing to
/// do until the FIB changes.
#[derive(Debug)]
pub struct SnapshotFeed {
    rx: Receiver<SnapshotUpdate>,
    current: SnapshotUpdate,
    disconnected: bool,
}

impl SnapshotFeed {
    /// Drain queued publishes latest-wins and return the freshest
    /// snapshot known to this feed.
    pub fn refresh(&mut self) -> &SnapshotUpdate {
        loop {
            match self.rx.try_recv() {
                Ok(up) => {
                    if up.epoch >= self.current.epoch {
                        self.current = up;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    break;
                }
            }
        }
        &self.current
    }

    /// The freshest snapshot seen so far, without draining the queue.
    pub fn current(&self) -> &SnapshotUpdate {
        &self.current
    }

    /// Block until a snapshot with epoch strictly greater than `epoch`
    /// is observed, or `timeout` passes. Returns `true` when a newer
    /// snapshot is now current (also drains any backlog latest-wins).
    pub fn wait_newer(&mut self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.refresh();
            if self.current.epoch > epoch {
                return true;
            }
            if self.disconnected {
                return false;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            match self.rx.recv_timeout(remaining) {
                Ok(up) => {
                    if up.epoch >= self.current.epoch {
                        self.current = up;
                    }
                }
                Err(RecvTimeoutError::Timeout) => return false,
                Err(RecvTimeoutError::Disconnected) => {
                    self.disconnected = true;
                    return false;
                }
            }
        }
    }

    /// Whether the publishing hub has gone away. The current snapshot
    /// stays valid — it is the final one.
    pub fn is_disconnected(&self) -> bool {
        self.disconnected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(k: usize) -> Arc<SpliceFib> {
        Arc::new(SpliceFib::empty(k, 3))
    }

    #[test]
    fn subscriber_is_primed_with_the_current_snapshot() {
        let hub = SnapshotHub::new(fib(1));
        hub.publish(fib(2));
        let mut feed = hub.subscribe();
        assert_eq!(feed.current().epoch, 1);
        assert_eq!(feed.refresh().fib.k(), 2);
    }

    #[test]
    fn publishes_fan_out_and_refresh_takes_the_latest() {
        let hub = SnapshotHub::new(fib(1));
        let mut feed = hub.subscribe();
        assert_eq!(feed.current().epoch, 0);
        for k in 2..=5 {
            hub.publish(fib(k));
        }
        // Four epochs queued; a single refresh lands on the last.
        let snap = feed.refresh();
        assert_eq!(snap.epoch, 4);
        assert_eq!(snap.fib.k(), 5);
    }

    #[test]
    fn dropped_feeds_are_pruned_on_publish() {
        let hub = SnapshotHub::new(fib(1));
        let feed = hub.subscribe();
        let _kept = hub.subscribe();
        assert_eq!(hub.subscriber_count(), 2);
        drop(feed);
        hub.publish(fib(2));
        assert_eq!(hub.subscriber_count(), 1);
    }

    #[test]
    fn wait_newer_blocks_until_a_publish_or_times_out() {
        let hub = Arc::new(SnapshotHub::new(fib(1)));
        let mut feed = hub.subscribe();
        assert!(
            !feed.wait_newer(0, Duration::from_millis(20)),
            "no publish: must time out"
        );
        let publisher = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                hub.publish(fib(2));
            })
        };
        assert!(feed.wait_newer(0, Duration::from_secs(5)));
        assert_eq!(feed.current().epoch, 1);
        publisher.join().unwrap();
    }

    #[test]
    fn feed_outlives_the_hub_with_the_final_snapshot() {
        let hub = SnapshotHub::new(fib(1));
        let mut feed = hub.subscribe();
        hub.publish(fib(4));
        drop(hub);
        assert_eq!(feed.refresh().fib.k(), 4);
        assert!(feed.is_disconnected());
        assert!(!feed.wait_newer(1, Duration::from_millis(5)));
    }

    #[test]
    fn concurrent_publish_and_subscribe_never_miss_the_latest_epoch() {
        let hub = Arc::new(SnapshotHub::new(fib(1)));
        let total = 200u64;
        let publisher = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                for _ in 0..total {
                    hub.publish(fib(2));
                }
            })
        };
        let subscriber = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                let mut max_seen = 0;
                for _ in 0..50 {
                    // Primed epoch is never behind the epoch the hub
                    // reported before the subscribe.
                    let before = hub.epoch();
                    let mut feed = hub.subscribe();
                    assert!(feed.current().epoch >= before);
                    feed.wait_newer(before, Duration::from_millis(1));
                    max_seen = max_seen.max(feed.current().epoch);
                }
                max_seen
            })
        };
        publisher.join().unwrap();
        let _ = subscriber.join().unwrap();
        // After the publisher finishes, a fresh feed must be primed with
        // the final epoch exactly.
        assert_eq!(hub.subscribe().current().epoch, total);
    }
}
