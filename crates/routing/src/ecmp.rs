//! Equal-cost multipath (ECMP) — the multipath that *is* deployed today.
//!
//! The paper's framing is that Internet routing is single-path; the one
//! mainstream exception is ECMP, which spreads over next hops tied for
//! the same shortest distance. ECMP's diversity is an accident of weight
//! ties, so it makes a natural baseline for splicing: how much
//! reachability do k deliberate trees buy over one weight setting's ties?

use splice_graph::{dijkstra, EdgeId, EdgeMask, Graph, NodeId};
use std::collections::VecDeque;

/// Per-destination ECMP next-hop sets: `sets[u]` holds every
/// `(next hop, edge)` of `u` on *some* shortest path toward the root.
#[derive(Clone, Debug, PartialEq)]
pub struct EcmpSets {
    /// The destination these sets route toward.
    pub root: NodeId,
    /// Next-hop alternatives per node (empty at the root / unreachable).
    pub sets: Vec<Vec<(NodeId, EdgeId)>>,
}

/// Compute ECMP next hops toward `root`: a neighbor `v` of `u` qualifies
/// iff `dist(u) = w(u,v) + dist(v)` (it lies on a shortest path).
pub fn ecmp_sets(g: &Graph, root: NodeId, weights: &[f64]) -> EcmpSets {
    let spt = dijkstra(g, root, weights);
    let sets = g
        .nodes()
        .map(|u| {
            if u == root || !spt.reaches(u) {
                return Vec::new();
            }
            g.neighbors(u)
                .iter()
                .filter(|&&(v, e)| {
                    spt.reaches(v)
                        && (spt.distance(u) - weights[e.index()] - spt.distance(v)).abs() < 1e-9
                })
                .copied()
                .collect()
        })
        .collect();
    EcmpSets { root, sets }
}

impl EcmpSets {
    /// Which nodes can still deliver to the root over surviving ECMP
    /// arcs (any tie-breaking policy; this is the generous DAG bound).
    pub fn reachable(&self, mask: &EdgeMask) -> Vec<bool> {
        let n = self.sets.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.sets.iter().enumerate() {
            for &(v, e) in outs {
                if mask.is_up(e) {
                    rev[v.index()].push(u);
                }
            }
        }
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[self.root.index()] = true;
        q.push_back(self.root.index());
        while let Some(v) = q.pop_front() {
            for &u in &rev[v] {
                if !seen[u] {
                    seen[u] = true;
                    q.push_back(u);
                }
            }
        }
        seen
    }

    /// Mean number of next-hop alternatives over nodes that have any.
    pub fn mean_fanout(&self) -> f64 {
        let with: Vec<usize> = self.sets.iter().map(Vec::len).filter(|&l| l > 0).collect();
        if with.is_empty() {
            0.0
        } else {
            with.iter().sum::<usize>() as f64 / with.len() as f64
        }
    }
}

/// Count ordered pairs ECMP cannot connect under `mask`, over all
/// destinations — the ECMP analogue of `Splicing::disconnected_pairs`.
pub fn ecmp_disconnected_pairs(g: &Graph, weights: &[f64], mask: &EdgeMask) -> usize {
    let mut disconnected = 0;
    for t in g.nodes() {
        let sets = ecmp_sets(g, t, weights);
        let reach = sets.reachable(mask);
        disconnected += reach.iter().filter(|&&r| !r).count();
    }
    disconnected
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::graph::from_edges;

    /// Two equal-cost routes 0 -> 3.
    fn equal_diamond() -> Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
    }

    #[test]
    fn ties_produce_fanout() {
        let g = equal_diamond();
        let sets = ecmp_sets(&g, NodeId(3), &g.base_weights());
        assert_eq!(sets.sets[0].len(), 2, "node 0 has two equal-cost hops");
        assert_eq!(sets.sets[1].len(), 1);
        assert!(sets.sets[3].is_empty(), "root has no next hop");
        assert!(sets.mean_fanout() > 1.0);
    }

    #[test]
    fn no_ties_means_single_path() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let sets = ecmp_sets(&g, NodeId(3), &g.base_weights());
        assert_eq!(sets.sets[0].len(), 1, "strictly shorter route wins alone");
    }

    #[test]
    fn ecmp_survives_failures_on_its_dag_only() {
        let g = equal_diamond();
        let w = g.base_weights();
        // Fail 0-1: pair 0<->3 survives on the other equal-cost branch,
        // but 0<->1's unique shortest path is gone — ECMP has no detour
        // (that's the gap splicing fills).
        let mask = EdgeMask::from_failed(4, &[EdgeId(0)]);
        assert_eq!(ecmp_disconnected_pairs(&g, &w, &mask), 2);
        let toward3 = ecmp_sets(&g, NodeId(3), &w);
        assert!(toward3.reachable(&mask)[0], "0 -> 3 rides the tie");
        // Fail both of 0's branches: 0 is cut from everyone.
        let mask = EdgeMask::from_failed(4, &[EdgeId(0), EdgeId(2)]);
        let disc = ecmp_disconnected_pairs(&g, &w, &mask);
        assert!(
            disc >= 6,
            "0 cut from 3 destinations, both directions: {disc}"
        );
    }

    #[test]
    fn ecmp_never_uses_non_shortest_arcs() {
        // The diamond with unequal costs: even though 0-2-3 exists, ECMP
        // toward 3 must not use it, so failing 1-3 cuts node 0 and 1.
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let mask = EdgeMask::from_failed(4, &[EdgeId(1)]);
        let sets = ecmp_sets(&g, NodeId(3), &g.base_weights());
        let reach = sets.reachable(&mask);
        assert!(!reach[0]);
        assert!(!reach[1]);
        assert!(reach[2], "2 routes directly");
    }
}
