//! # splice-routing
//!
//! A link-state routing-protocol simulator: the substrate path splicing
//! composes.
//!
//! Path splicing's control plane "runs multiple routing protocol
//! instances, each with slightly different link weights" (§3.1.2), relying
//! on multi-topology routing for deployment. This crate models that layer
//! faithfully enough to account for the paper's scalability claim (§4.2:
//! state, convergence and message complexity grow *linearly* in the number
//! of slices k):
//!
//! * [`lsa`] — link-state advertisements, one per router, versioned by
//!   sequence number.
//! * [`lsdb`] — the per-router link-state database with freshness rules.
//! * [`flooding`] — reliable flooding over the topology, counting every
//!   LSA transmission so message complexity can be measured rather than
//!   asserted.
//! * [`spf`] — shortest-path-first computation from a synchronized LSDB
//!   into per-router forwarding tables.
//! * [`fib`] — forwarding tables: per-destination next hops, the object
//!   Algorithm 1's `Lookup(dst, slice)` consults.
//! * [`arena`] — the flat spliced-FIB arena packing all k slices'
//!   forwarding state into one contiguous slab; its byte size is the
//!   measured §4.2 state-size accounting.
//! * [`multitopology`] — RFC 4915-style multi-topology routing hosting k
//!   independent instances over one physical topology; this is the
//!   deployment vehicle the paper names (Cisco MTR) and the unit whose
//!   state/message accounting backs Figure-free claim §4.2.

pub mod arena;
pub mod dynamics;
pub mod ecmp;
pub mod fib;
pub mod flooding;
pub mod lsa;
pub mod lsdb;
pub mod multitopology;
pub mod snapshot;
pub mod spf;
pub mod view;

pub use arena::{Plane, PlaneMut, RepairStats, SpliceFib, NO_ROUTE};
pub use fib::{Fib, RoutingTables};
pub use lsa::LinkStateAd;
pub use lsdb::LinkStateDb;
pub use multitopology::{MultiTopology, ResourceUsage};
pub use snapshot::{SnapshotFeed, SnapshotHub, SnapshotUpdate};
pub use view::FibCell;
