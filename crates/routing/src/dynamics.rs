//! Convergence dynamics: what the network looks like *while* link-state
//! routing reacts to a failure.
//!
//! §6 of the paper leaves open "the interactions of path splicing with
//! the convergence of the routing protocol, which could affect
//! forwarding-table entries at the same time as path splicing is
//! re-routing traffic". This module models the timeline precisely enough
//! to study that:
//!
//! 1. at `t = 0` a link fails;
//! 2. its two endpoints detect the failure after `detection_delay_ms`
//!    and re-originate their LSAs;
//! 3. the LSAs flood hop-by-hop, each link adding its propagation
//!    latency plus `per_hop_processing_ms`;
//! 4. each router runs SPF `spf_delay_ms` after learning of the failure
//!    and installs its new FIB.
//!
//! Until the last install, the network runs a **mix** of old and new
//! tables — the regime where destination-based routing suffers
//! blackholes *and transient micro-loops* (two routers pointing at each
//! other). [`transient_outcomes`] walks packets over the mixed state and
//! classifies every pair; the splicing experiments in `splice-sim` build
//! on it.

use crate::fib::RoutingTables;
use crate::spf::spf_from_weights;
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};
use std::collections::HashSet;

/// Timing model for one convergence episode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynamicsConfig {
    /// Time for a link's endpoints to detect its failure (carrier loss /
    /// hello timeout), in ms.
    pub detection_delay_ms: f64,
    /// Per-hop LSA processing overhead on top of link propagation, ms.
    pub per_hop_processing_ms: f64,
    /// Delay from learning about the failure to installing the new FIB
    /// (SPF hold-down + computation), ms.
    pub spf_delay_ms: f64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        // Conventional IGP numbers: ~50 ms detection, ~1 ms per-hop LSA
        // processing, ~100 ms SPF hold.
        DynamicsConfig {
            detection_delay_ms: 50.0,
            per_hop_processing_ms: 1.0,
            spf_delay_ms: 100.0,
        }
    }
}

/// The convergence episode's timeline for one failed link.
#[derive(Clone, Debug)]
pub struct ConvergenceTimeline {
    /// The link that failed at t = 0.
    pub failed: EdgeId,
    /// Per-router time (ms) at which the *new* FIB is installed.
    pub install_at: Vec<f64>,
    /// The pre-failure tables.
    pub old_tables: RoutingTables,
    /// The post-failure tables.
    pub new_tables: RoutingTables,
}

impl ConvergenceTimeline {
    /// When the last router installs — the convergence time.
    pub fn converged_at(&self) -> f64 {
        self.install_at.iter().cloned().fold(0.0, f64::max)
    }

    /// Whether router `r` has installed its new FIB by time `t`.
    pub fn is_updated(&self, r: NodeId, t: f64) -> bool {
        t >= self.install_at[r.index()]
    }

    /// The next hop router `r` uses toward `dst` at time `t` (old or new
    /// table depending on its install time).
    pub fn next_hop_at(&self, r: NodeId, dst: NodeId, t: f64) -> Option<(NodeId, EdgeId)> {
        let tables = if self.is_updated(r, t) {
            &self.new_tables
        } else {
            &self.old_tables
        };
        tables.fib(r).entries[dst.index()]
    }

    /// The distinct interesting instants: just after the failure, and
    /// just after each install (sorted, deduplicated).
    pub fn sample_times(&self) -> Vec<f64> {
        let mut ts: Vec<f64> = std::iter::once(0.0)
            .chain(self.install_at.iter().map(|&t| t + 1e-6))
            .collect();
        ts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        ts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        ts
    }
}

/// Compute the convergence timeline for failing `e`, with LSA propagation
/// riding the per-edge `latencies` (ms).
pub fn failure_timeline(
    g: &Graph,
    latencies: &[f64],
    weights: &[f64],
    e: EdgeId,
    cfg: &DynamicsConfig,
) -> ConvergenceTimeline {
    assert_eq!(latencies.len(), g.edge_count());
    let old_tables = spf_from_weights(g, weights);
    let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
    // Post-failure tables: SPF with the failed link removed.
    let new_tables = {
        let spts: Vec<_> = g
            .nodes()
            .map(|t| splice_graph::dijkstra_masked(g, t, weights, &mask))
            .collect();
        RoutingTables::from_spts(&spts)
    };

    // LSA arrival: earliest flood time from either endpoint, over the
    // surviving topology, with per-hop cost latency + processing.
    let edge = g.edge(e);
    let delay: Vec<f64> = latencies
        .iter()
        .map(|l| l + cfg.per_hop_processing_ms)
        .collect();
    let from_u = splice_graph::dijkstra_masked(g, edge.u, &delay, &mask);
    let from_v = splice_graph::dijkstra_masked(g, edge.v, &delay, &mask);
    let install_at: Vec<f64> = g
        .nodes()
        .map(|r| {
            let arrival = from_u.distance(r).min(from_v.distance(r));
            if arrival.is_finite() {
                cfg.detection_delay_ms + arrival + cfg.spf_delay_ms
            } else {
                // Partitioned from both endpoints: never learns; keeps the
                // old table (its traffic toward the far side is doomed
                // anyway).
                f64::INFINITY
            }
        })
        .collect();

    ConvergenceTimeline {
        failed: e,
        install_at,
        old_tables,
        new_tables,
    }
}

/// How a pair fares when walked over the mixed old/new tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransientFate {
    /// Reached the destination.
    Delivered,
    /// Hit the failed link while its owner still runs the old table.
    Blackholed,
    /// Entered a forwarding loop between differently-updated routers.
    MicroLoop,
    /// No route (disconnected by the failure).
    NoRoute,
}

/// Classification of all ordered pairs at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TransientCensus {
    /// Pairs delivered.
    pub delivered: usize,
    /// Pairs blackholed at the failed link.
    pub blackholed: usize,
    /// Pairs caught in a transient micro-loop.
    pub microlooped: usize,
    /// Pairs with no route at all.
    pub no_route: usize,
}

/// Walk every ordered pair over the mixed tables at time `t`.
pub fn transient_outcomes(g: &Graph, timeline: &ConvergenceTimeline, t: f64) -> TransientCensus {
    let mask = EdgeMask::from_failed(g.edge_count(), &[timeline.failed]);
    let mut census = TransientCensus::default();
    for dst in g.nodes() {
        for src in g.nodes() {
            if src == dst {
                continue;
            }
            match walk_pair(g, timeline, &mask, src, dst, t) {
                TransientFate::Delivered => census.delivered += 1,
                TransientFate::Blackholed => census.blackholed += 1,
                TransientFate::MicroLoop => census.microlooped += 1,
                TransientFate::NoRoute => census.no_route += 1,
            }
        }
    }
    census
}

fn walk_pair(
    g: &Graph,
    timeline: &ConvergenceTimeline,
    mask: &EdgeMask,
    src: NodeId,
    dst: NodeId,
    t: f64,
) -> TransientFate {
    let mut at = src;
    let mut visited: HashSet<NodeId> = HashSet::new();
    loop {
        if at == dst {
            return TransientFate::Delivered;
        }
        if !visited.insert(at) {
            // The mixed-table walk is deterministic, so a revisit is a
            // genuine transient loop.
            return TransientFate::MicroLoop;
        }
        let Some((next, e)) = timeline.next_hop_at(at, dst, t) else {
            return TransientFate::NoRoute;
        };
        if mask.is_failed(e) {
            return TransientFate::Blackholed;
        }
        at = next;
        if visited.len() > g.node_count() {
            return TransientFate::MicroLoop;
        }
    }
}

/// Integrate pair-downtime over the whole episode: for each interval
/// between interesting instants, non-delivered pairs × interval length
/// (pair·ms). The number splicing is trying to drive to zero.
pub fn downtime_pair_ms(g: &Graph, timeline: &ConvergenceTimeline) -> f64 {
    let times = timeline.sample_times();
    let horizon = timeline
        .converged_at()
        .max(times.last().copied().unwrap_or(0.0));
    let mut total = 0.0;
    for w in times.windows(2) {
        let census = transient_outcomes(g, timeline, w[0]);
        let down = census.blackholed + census.microlooped;
        total += down as f64 * (w[1] - w[0]);
    }
    // After the final event the network is converged; only truly
    // disconnected pairs remain down, and they are not transient.
    let _ = horizon;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::graph::from_edges;

    /// A square with one diagonal: failing an edge leaves alternatives.
    fn square_plus() -> Graph {
        from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 1.4),
            ],
        )
    }

    fn cfg() -> DynamicsConfig {
        DynamicsConfig {
            detection_delay_ms: 50.0,
            per_hop_processing_ms: 1.0,
            spf_delay_ms: 100.0,
        }
    }

    #[test]
    fn endpoints_install_first() {
        let g = square_plus();
        let lat = g.base_weights();
        let tl = failure_timeline(&g, &lat, &g.base_weights(), EdgeId(0), &cfg());
        let edge = g.edge(EdgeId(0));
        let endpoint_min = tl.install_at[edge.u.index()].min(tl.install_at[edge.v.index()]);
        for r in g.nodes() {
            assert!(tl.install_at[r.index()] >= endpoint_min - 1e-9);
        }
        // Endpoints: detection + spf only (no propagation).
        assert!((endpoint_min - 150.0).abs() < 1e-9);
        assert!(tl.converged_at() >= endpoint_min);
    }

    #[test]
    fn before_detection_everything_blackholes_through_failed_link() {
        let g = square_plus();
        let lat = g.base_weights();
        let tl = failure_timeline(&g, &lat, &g.base_weights(), EdgeId(0), &cfg());
        let census = transient_outcomes(&g, &tl, 0.0);
        // Pairs whose old shortest path crossed 0-1 are blackholed.
        assert!(census.blackholed > 0);
        assert_eq!(census.no_route, 0);
        assert_eq!(
            census.delivered + census.blackholed + census.microlooped,
            12
        );
    }

    #[test]
    fn after_convergence_everything_delivers() {
        let g = square_plus();
        let lat = g.base_weights();
        let tl = failure_timeline(&g, &lat, &g.base_weights(), EdgeId(0), &cfg());
        let census = transient_outcomes(&g, &tl, tl.converged_at() + 1.0);
        assert_eq!(census.delivered, 12, "{census:?}");
    }

    #[test]
    fn microloops_can_appear_mid_convergence() {
        // Classic micro-loop shape: a line 0-1-2-3 plus a long detour from
        // 0 to 3. Fail 2-3: node 2 updates early and routes toward 3 via
        // 1 (long way), but 1 still routes to 3 via 2 -> 1<->2 loop while
        // 1 runs the old table.
        let g = from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)]);
        let lat = vec![1.0; 4];
        // Make node 2 install long before node 1 by using a config where
        // propagation dominates... both endpoints of 2-3 are 2 and 3;
        // node 2 is an endpoint (installs at detection+spf), node 1 one
        // hop later. A window exists where 2 is new and 1 is old.
        let tl = failure_timeline(&g, &lat, &g.base_weights(), EdgeId(2), &cfg());
        assert!(tl.install_at[2] < tl.install_at[1]);
        let mid = (tl.install_at[2] + tl.install_at[1]) / 2.0;
        let census = transient_outcomes(&g, &tl, mid);
        assert!(
            census.microlooped > 0,
            "expected a 1<->2 micro-loop at t={mid}: {census:?}"
        );
    }

    #[test]
    fn downtime_integral_positive_and_finite() {
        let g = square_plus();
        let lat = g.base_weights();
        let tl = failure_timeline(&g, &lat, &g.base_weights(), EdgeId(0), &cfg());
        let d = downtime_pair_ms(&g, &tl);
        assert!(d > 0.0, "failure must cost some pair-downtime");
        assert!(d.is_finite());
    }

    #[test]
    fn partitioned_routers_never_install() {
        // A path 0-1: failing it partitions both sides; each endpoint
        // still detects locally but the *other* side's non-endpoint
        // routers (none here) would stay stale. With 3 nodes 0-1-2,
        // failing 0-1 leaves 0 unreachable from 1,2's LSAs only via the
        // dead link — but 0 is itself an endpoint, so it detects.
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let lat = vec![1.0; 2];
        let tl = failure_timeline(&g, &lat, &g.base_weights(), EdgeId(0), &cfg());
        assert!(tl.install_at.iter().all(|t| t.is_finite()));
        // Post-convergence, 0<->1 and 0<->2 have no route.
        let census = transient_outcomes(&g, &tl, tl.converged_at() + 1.0);
        assert_eq!(census.no_route, 4);
    }

    #[test]
    fn sample_times_sorted_unique() {
        let g = square_plus();
        let lat = g.base_weights();
        let tl = failure_timeline(&g, &lat, &g.base_weights(), EdgeId(1), &cfg());
        let ts = tl.sample_times();
        for w in ts.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(ts[0], 0.0);
    }
}
