//! Link-state advertisements.
//!
//! Each router originates one LSA describing its incident links and their
//! weights *in one topology instance* (slice). LSAs carry a sequence
//! number; receivers keep only the freshest per (origin, instance).

use serde::{Deserialize, Serialize};
use splice_graph::{EdgeId, NodeId};

/// One router's view of its incident links, for one routing instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkStateAd {
    /// Originating router.
    pub origin: NodeId,
    /// Routing instance (slice index) this LSA belongs to.
    pub instance: usize,
    /// Freshness: higher wins.
    pub seq: u64,
    /// Advertised links: (neighbor, physical edge, weight in this instance).
    pub links: Vec<(NodeId, EdgeId, f64)>,
}

impl LinkStateAd {
    /// Whether this LSA supersedes `other` (same origin+instance, higher
    /// sequence number).
    pub fn supersedes(&self, other: &LinkStateAd) -> bool {
        self.origin == other.origin && self.instance == other.instance && self.seq > other.seq
    }

    /// Approximate wire size in bytes, for message-volume accounting:
    /// a 16-byte header plus 12 bytes per advertised link (matching the
    /// OSPF router-LSA layout closely enough for trend measurements).
    pub fn wire_size(&self) -> usize {
        16 + 12 * self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ad(origin: u32, instance: usize, seq: u64) -> LinkStateAd {
        LinkStateAd {
            origin: NodeId(origin),
            instance,
            seq,
            links: vec![(NodeId(1), EdgeId(0), 1.0)],
        }
    }

    #[test]
    fn supersession_rules() {
        assert!(ad(0, 0, 2).supersedes(&ad(0, 0, 1)));
        assert!(!ad(0, 0, 1).supersedes(&ad(0, 0, 2)));
        assert!(!ad(0, 0, 2).supersedes(&ad(0, 0, 2))); // equal seq: not newer
        assert!(!ad(1, 0, 2).supersedes(&ad(0, 0, 1))); // different origin
        assert!(!ad(0, 1, 2).supersedes(&ad(0, 0, 1))); // different instance
    }

    #[test]
    fn wire_size_scales_with_links() {
        let mut a = ad(0, 0, 1);
        let base = a.wire_size();
        a.links.push((NodeId(2), EdgeId(1), 2.0));
        assert_eq!(a.wire_size(), base + 12);
    }
}
