//! The link-state database: the freshest LSA per (origin, instance).
//!
//! A synchronized LSDB is what SPF runs on. The database can also
//! re-materialize the weight vector of an instance, which is how routers
//! agree on the perturbed topology without any extra protocol machinery —
//! exactly the property splicing relies on.

use crate::lsa::LinkStateAd;
use splice_graph::Graph;
use std::collections::HashMap;

/// Per-router (or global, when simulating an already-converged network)
/// store of the freshest LSAs.
#[derive(Clone, Debug, Default)]
pub struct LinkStateDb {
    ads: HashMap<(u32, usize), LinkStateAd>,
}

impl LinkStateDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install `ad` if it is new or fresher than the stored one.
    /// Returns `true` if the database changed (the LSA must then be
    /// flooded onward).
    pub fn install(&mut self, ad: LinkStateAd) -> bool {
        let key = (ad.origin.0, ad.instance);
        match self.ads.get(&key) {
            Some(existing) if !ad.supersedes(existing) => false,
            _ => {
                self.ads.insert(key, ad);
                true
            }
        }
    }

    /// Number of stored LSAs (routing state size, in entries).
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// True when no LSA is stored.
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }

    /// Total advertised bytes, for memory-footprint accounting.
    pub fn total_bytes(&self) -> usize {
        self.ads.values().map(|a| a.wire_size()).sum()
    }

    /// The freshest LSA from `origin` for `instance`.
    pub fn get(&self, origin: splice_graph::NodeId, instance: usize) -> Option<&LinkStateAd> {
        self.ads.get(&(origin.0, instance))
    }

    /// Reconstruct the weight vector of `instance` from the stored LSAs.
    ///
    /// Every edge should be advertised by both endpoints; when both are
    /// present the weights must agree (they are derived from the same
    /// pseudorandom perturbation). Missing edges fall back to the graph's
    /// base weight, mirroring a router's behaviour during partial
    /// convergence.
    pub fn instance_weights(&self, g: &Graph, instance: usize) -> Vec<f64> {
        let mut w = g.base_weights();
        for ad in self.ads.values().filter(|a| a.instance == instance) {
            for &(_, e, weight) in &ad.links {
                w[e.index()] = weight;
            }
        }
        w
    }

    /// Whether the database holds an LSA from every node for `instance`
    /// (i.e. the instance has fully converged).
    pub fn converged(&self, g: &Graph, instance: usize) -> bool {
        g.nodes().all(|n| self.ads.contains_key(&(n.0, instance)))
    }
}

/// Originate the LSA a router would flood for one instance: all incident
/// links with their instance weights.
pub fn originate(
    g: &Graph,
    node: splice_graph::NodeId,
    instance: usize,
    weights: &[f64],
    seq: u64,
) -> LinkStateAd {
    LinkStateAd {
        origin: node,
        instance,
        seq,
        links: g
            .neighbors(node)
            .iter()
            .map(|&(nbr, e)| (nbr, e, weights[e.index()]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::graph::from_edges;
    use splice_graph::NodeId;

    fn triangle() -> Graph {
        from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
    }

    #[test]
    fn install_freshness() {
        let g = triangle();
        let w = g.base_weights();
        let mut db = LinkStateDb::new();
        let a1 = originate(&g, NodeId(0), 0, &w, 1);
        let a2 = originate(&g, NodeId(0), 0, &w, 2);
        assert!(db.install(a1.clone()));
        assert!(!db.install(a1)); // replay rejected
        assert!(db.install(a2)); // fresher accepted
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn instances_are_independent() {
        let g = triangle();
        let w = g.base_weights();
        let mut db = LinkStateDb::new();
        db.install(originate(&g, NodeId(0), 0, &w, 1));
        db.install(originate(&g, NodeId(0), 1, &w, 1));
        assert_eq!(db.len(), 2);
        assert!(db.get(NodeId(0), 0).is_some());
        assert!(db.get(NodeId(0), 1).is_some());
        assert!(db.get(NodeId(1), 0).is_none());
    }

    #[test]
    fn weight_reconstruction() {
        let g = triangle();
        let perturbed = vec![1.5, 2.5, 4.5];
        let mut db = LinkStateDb::new();
        for n in g.nodes() {
            db.install(originate(&g, n, 0, &perturbed, 1));
        }
        assert!(db.converged(&g, 0));
        assert_eq!(db.instance_weights(&g, 0), perturbed);
    }

    #[test]
    fn partial_convergence_falls_back_to_base() {
        let g = triangle();
        let perturbed = vec![9.0, 9.0, 9.0];
        let mut db = LinkStateDb::new();
        // Only node 0 has advertised: edges 0 (0-1) and 2 (0-2) are covered.
        db.install(originate(&g, NodeId(0), 0, &perturbed, 1));
        assert!(!db.converged(&g, 0));
        let w = db.instance_weights(&g, 0);
        assert_eq!(w, vec![9.0, 2.0, 9.0]); // edge 1 (1-2) stays base
    }

    #[test]
    fn byte_accounting() {
        let g = triangle();
        let w = g.base_weights();
        let mut db = LinkStateDb::new();
        assert!(db.is_empty());
        db.install(originate(&g, NodeId(0), 0, &w, 1));
        assert_eq!(db.total_bytes(), 16 + 12 * 2); // node 0 has 2 links
    }
}
