//! Reliable flooding of LSAs, with message accounting.
//!
//! The simulation is round-based: an LSA injected at its origin crosses
//! every link at most once per direction (split-horizon: a router never
//! echoes an LSA back out the interface it arrived on, and drops copies it
//! has already installed). This matches OSPF's flooding cost model and
//! lets us *measure* the paper's §4.2 claim that message complexity is
//! linear in the number of slices.

use crate::lsa::LinkStateAd;
use crate::lsdb::{originate, LinkStateDb};
use splice_graph::Graph;
use std::collections::VecDeque;

/// Outcome of flooding a set of LSAs to every router.
#[derive(Clone, Debug, PartialEq)]
pub struct FloodStats {
    /// Total LSA transmissions (one LSA crossing one link once).
    pub messages: usize,
    /// Total bytes transmitted.
    pub bytes: usize,
    /// Rounds until quiescence — the convergence "time" in hop units.
    pub rounds: usize,
}

/// Flood `ads` from their origins until every router's LSDB is quiescent.
/// `dbs[i]` is router `i`'s database and is updated in place.
pub fn flood(g: &Graph, ads: Vec<LinkStateAd>, dbs: &mut [LinkStateDb]) -> FloodStats {
    assert_eq!(dbs.len(), g.node_count());
    let mut messages = 0usize;
    let mut bytes = 0usize;
    let mut rounds = 0usize;

    // Work items: (router that now holds the LSA, interface it arrived on, LSA).
    let mut current: VecDeque<(usize, Option<usize>, LinkStateAd)> = ads
        .into_iter()
        .map(|ad| (ad.origin.index(), None, ad))
        .collect();

    while !current.is_empty() {
        let mut next = VecDeque::new();
        for (at, arrived_via, ad) in current.drain(..) {
            if !dbs[at].install(ad.clone()) {
                continue; // stale/duplicate: dropped, not re-flooded
            }
            for &(nbr, e) in g.neighbors(splice_graph::NodeId(at as u32)) {
                if Some(e.index()) == arrived_via {
                    continue; // split horizon
                }
                messages += 1;
                bytes += ad.wire_size();
                next.push_back((nbr.index(), Some(e.index()), ad.clone()));
            }
        }
        if !next.is_empty() {
            rounds += 1;
        }
        current = next;
    }

    FloodStats {
        messages,
        bytes,
        rounds,
    }
}

/// Converge one routing instance from scratch: every router originates its
/// LSA for `instance` under `weights`, and all LSAs are flooded to all
/// routers. Returns the per-router databases and the flood statistics.
pub fn converge_instance(
    g: &Graph,
    instance: usize,
    weights: &[f64],
    seq: u64,
) -> (Vec<LinkStateDb>, FloodStats) {
    let mut dbs = vec![LinkStateDb::new(); g.node_count()];
    let ads = g
        .nodes()
        .map(|n| originate(g, n, instance, weights, seq))
        .collect();
    let stats = flood(g, ads, &mut dbs);
    (dbs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::graph::from_edges;

    fn line(n: usize) -> Graph {
        let edges: Vec<(u32, u32, f64)> = (0..n as u32 - 1).map(|i| (i, i + 1, 1.0)).collect();
        from_edges(n, &edges)
    }

    #[test]
    fn every_router_converges() {
        let g = line(5);
        let w = g.base_weights();
        let (dbs, stats) = converge_instance(&g, 0, &w, 1);
        for db in &dbs {
            assert!(db.converged(&g, 0));
            assert_eq!(db.instance_weights(&g, 0), w);
        }
        assert!(stats.messages > 0);
        // On a 5-node line the farthest LSA travels 4 hops.
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn message_count_bounded_by_lsas_times_directed_edges() {
        // Each LSA crosses each link at most once per direction.
        let g = line(6);
        let w = g.base_weights();
        let (_, stats) = converge_instance(&g, 0, &w, 1);
        let bound = g.node_count() * g.edge_count() * 2;
        assert!(stats.messages <= bound, "{} > {bound}", stats.messages);
    }

    #[test]
    fn replays_are_not_reflooded() {
        let g = line(3);
        let w = g.base_weights();
        let (mut dbs, first) = converge_instance(&g, 0, &w, 1);
        // Re-inject the same LSAs (same seq): no messages at all.
        let ads: Vec<_> = g.nodes().map(|n| originate(&g, n, 0, &w, 1)).collect();
        let second = flood(&g, ads, &mut dbs);
        assert_eq!(second.messages, 0);
        assert!(first.messages > 0);
    }

    #[test]
    fn fresher_lsa_refloods() {
        let g = line(3);
        let w = g.base_weights();
        let (mut dbs, _) = converge_instance(&g, 0, &w, 1);
        let newer = vec![originate(&g, splice_graph::NodeId(0), 0, &w, 2)];
        let stats = flood(&g, newer, &mut dbs);
        assert!(stats.messages > 0);
        assert_eq!(dbs[2].get(splice_graph::NodeId(0), 0).unwrap().seq, 2);
    }

    #[test]
    fn bytes_tracked() {
        let g = line(3);
        let (_, stats) = converge_instance(&g, 0, &g.base_weights(), 1);
        assert!(stats.bytes >= stats.messages * 16);
    }
}
