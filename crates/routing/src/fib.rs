//! Forwarding information bases.
//!
//! A [`Fib`] is one router's next-hop table for one routing instance:
//! exactly what Algorithm 1's `Lookup(dst, slice)` consults. A
//! [`RoutingTables`] bundles the FIBs of *every* router for one instance,
//! which is the natural unit the simulator works with (it is produced by
//! `n` destination-rooted SPTs).

use serde::{Deserialize, Serialize};
use splice_graph::{EdgeId, NodeId, Spt};

/// One router's per-destination next hops for a single routing instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fib {
    /// The router owning this table.
    pub router: NodeId,
    /// `entries[dst] = (next hop, outgoing edge)`; `None` when `dst` is the
    /// router itself or unreachable.
    pub entries: Vec<Option<(NodeId, EdgeId)>>,
}

impl Fib {
    /// Next hop toward `dst`, if any.
    #[inline]
    pub fn next_hop(&self, dst: NodeId) -> Option<NodeId> {
        self.entries[dst.index()].map(|(n, _)| n)
    }

    /// Outgoing edge toward `dst`, if any.
    #[inline]
    pub fn out_edge(&self, dst: NodeId) -> Option<EdgeId> {
        self.entries[dst.index()].map(|(_, e)| e)
    }

    /// Number of installed (non-`None`) entries — the FIB state size.
    pub fn installed(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// All routers' FIBs for one routing instance (slice).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutingTables {
    /// `fibs[router]` — index-aligned with node ids.
    pub fibs: Vec<Fib>,
}

impl RoutingTables {
    /// Build per-router FIBs from destination-rooted SPTs
    /// (`spts[t]` must be rooted at node `t`).
    ///
    /// The tree rooted at `t` contains, for every router `u`, the next hop
    /// `u` uses toward `t` — this "transpose" is how a link-state network
    /// actually materializes its tables.
    pub fn from_spts(spts: &[Spt]) -> RoutingTables {
        let n = spts.len();
        let mut fibs: Vec<Fib> = (0..n)
            .map(|u| Fib {
                router: NodeId(u as u32),
                entries: vec![None; n],
            })
            .collect();
        for (t, spt) in spts.iter().enumerate() {
            assert_eq!(spt.root.index(), t, "spts[{t}] must be rooted at node {t}");
            for (fib, parent) in fibs.iter_mut().zip(&spt.parent) {
                fib.entries[t] = *parent;
            }
        }
        RoutingTables { fibs }
    }

    /// The FIB of `router`.
    #[inline]
    pub fn fib(&self, router: NodeId) -> &Fib {
        &self.fibs[router.index()]
    }

    /// Next hop of `router` toward `dst` in this instance.
    #[inline]
    pub fn next_hop(&self, router: NodeId, dst: NodeId) -> Option<NodeId> {
        self.fibs[router.index()].next_hop(dst)
    }

    /// Total installed entries across all routers (network-wide state).
    pub fn total_state(&self) -> usize {
        self.fibs.iter().map(|f| f.installed()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::dijkstra::all_destinations;
    use splice_graph::graph::from_edges;

    fn diamond() -> splice_graph::Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    #[test]
    fn fib_transpose_matches_spts() {
        let g = diamond();
        let spts = all_destinations(&g, &g.base_weights());
        let rt = RoutingTables::from_spts(&spts);
        // Router 0 toward 3: via 1 (cost 3 < 4).
        assert_eq!(rt.next_hop(NodeId(0), NodeId(3)), Some(NodeId(1)));
        // Router 3 toward 0: symmetric.
        assert_eq!(rt.next_hop(NodeId(3), NodeId(0)), Some(NodeId(1)));
        // Self entries are empty.
        assert_eq!(rt.next_hop(NodeId(2), NodeId(2)), None);
    }

    #[test]
    fn state_accounting() {
        let g = diamond();
        let spts = all_destinations(&g, &g.base_weights());
        let rt = RoutingTables::from_spts(&spts);
        // Connected graph: every router has n-1 entries.
        assert_eq!(rt.total_state(), 4 * 3);
        assert_eq!(rt.fib(NodeId(0)).installed(), 3);
    }

    #[test]
    fn unreachable_destinations_have_no_entry() {
        let g = from_edges(3, &[(0, 1, 1.0)]); // node 2 isolated
        let spts = all_destinations(&g, &g.base_weights());
        let rt = RoutingTables::from_spts(&spts);
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), None);
        assert_eq!(rt.next_hop(NodeId(2), NodeId(0)), None);
        assert_eq!(rt.total_state(), 2); // 0<->1 only
    }

    #[test]
    fn out_edges_are_consistent() {
        let g = diamond();
        let spts = all_destinations(&g, &g.base_weights());
        let rt = RoutingTables::from_spts(&spts);
        for u in g.nodes() {
            for t in g.nodes() {
                if let (Some(nh), Some(e)) = (rt.next_hop(u, t), rt.fib(u).out_edge(t)) {
                    let edge = g.edge(e);
                    assert!(edge.touches(u) && edge.touches(nh));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be rooted")]
    fn misordered_spts_rejected() {
        let g = diamond();
        let mut spts = all_destinations(&g, &g.base_weights());
        spts.swap(0, 1);
        RoutingTables::from_spts(&spts);
    }
}
