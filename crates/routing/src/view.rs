//! Read-side publication of forwarding state: a [`FibCell`] hands
//! immutable `Arc<SpliceFib>` snapshots to any number of concurrent
//! walkers while the control plane installs repaired arenas underneath.
//!
//! The arena itself is copy-on-repair (`Splicing::repair_batch` returns
//! a *new* deployment), so the only shared mutable state between the
//! control plane and the data plane is the pointer to the current
//! snapshot. Keeping that pointer behind one cell gives the data plane a
//! torn-read impossibility argument by construction: a walker loads the
//! `Arc` once per packet burst and never reads the cell again until the
//! burst finishes, so every packet of a burst sees either the whole
//! pre-repair FIB or the whole post-repair FIB — there is no window in
//! which half-patched columns are visible, because no arena is ever
//! patched in place after publication.

use crate::arena::SpliceFib;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A single-writer, many-reader cell holding the current FIB snapshot.
///
/// `load` clones the `Arc` under a read lock (two atomic ops, no
/// allocation); `publish` swaps the snapshot and bumps a version
/// counter. The version lets pollers detect a republish without
/// comparing pointers, and lets tests assert how many snapshots a
/// worker actually observed.
#[derive(Debug)]
pub struct FibCell {
    current: RwLock<Arc<SpliceFib>>,
    version: AtomicU64,
}

impl FibCell {
    /// A cell initially publishing `fib` as version 0.
    pub fn new(fib: Arc<SpliceFib>) -> FibCell {
        FibCell {
            current: RwLock::new(fib),
            version: AtomicU64::new(0),
        }
    }

    /// The current snapshot. Cheap; callers should hold the returned
    /// `Arc` for a whole burst rather than re-loading per packet.
    pub fn load(&self) -> Arc<SpliceFib> {
        Arc::clone(&self.current.read().expect("FibCell lock poisoned"))
    }

    /// Install a new snapshot; returns the new version number.
    pub fn publish(&self, fib: Arc<SpliceFib>) -> u64 {
        let mut slot = self.current.write().expect("FibCell lock poisoned");
        *slot = fib;
        // Bumped while the write lock is held, so a reader that sees the
        // new version also sees (at least) the new snapshot.
        self.version.fetch_add(1, Ordering::Release) + 1
    }

    /// Monotone publish counter: 0 until the first [`FibCell::publish`].
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_published_snapshot() {
        let a = Arc::new(SpliceFib::empty(2, 4));
        let cell = FibCell::new(Arc::clone(&a));
        assert_eq!(cell.version(), 0);
        assert!(Arc::ptr_eq(&cell.load(), &a));

        let b = Arc::new(SpliceFib::empty(3, 4));
        assert_eq!(cell.publish(Arc::clone(&b)), 1);
        assert_eq!(cell.version(), 1);
        assert!(Arc::ptr_eq(&cell.load(), &b));
        assert_eq!(cell.publish(b), 2);
    }

    #[test]
    fn concurrent_loads_see_whole_snapshots() {
        // Readers hammering the cell while a writer republishes must only
        // ever observe one of the published arenas (k identifies which).
        let cell = Arc::new(FibCell::new(Arc::new(SpliceFib::empty(1, 3))));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for k in 2..50usize {
                    cell.publish(Arc::new(SpliceFib::empty(k, 3)));
                }
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let mut last = 0usize;
                for _ in 0..2000 {
                    let snap = cell.load();
                    assert!((1..50).contains(&snap.k()));
                    // Versions (and therefore k here) never move backward.
                    assert!(snap.k() >= last);
                    last = snap.k();
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(cell.load().k(), 49);
        assert_eq!(cell.version(), 48);
    }
}
