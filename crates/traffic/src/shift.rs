//! Failure-induced traffic shifts (§5 "selfish-routing effects").
//!
//! When a link dies, every flow crossing it re-routes. If all end systems
//! deflect the same way, the load lands on one link; if they spread
//! (random slices), it disperses. This experiment fails each link in turn
//! and measures how the busiest surviving link's load changes under each
//! routing mode.

use crate::load::{link_loads, link_loads_with_recovery, LoadReport, RoutingMode};
use crate::matrix::TrafficMatrix;
use splice_core::slices::Splicing;
use splice_graph::{EdgeId, EdgeMask, Graph};

/// Shift measurement for one failed link.
#[derive(Clone, Debug, PartialEq)]
pub struct ShiftResult {
    /// The failed link.
    pub failed: EdgeId,
    /// Peak link load before the failure.
    pub peak_before: f64,
    /// Peak link load after re-routing.
    pub peak_after: f64,
    /// Demand stranded after the failure.
    pub undelivered: f64,
    /// Flows that delivered nothing at all after the failure.
    pub stranded_flows: usize,
}

impl ShiftResult {
    /// Relative peak increase (0 = no shift pressure).
    pub fn peak_increase(&self) -> f64 {
        if self.peak_before <= 0.0 {
            0.0
        } else {
            self.peak_after / self.peak_before - 1.0
        }
    }
}

/// Fail every link in turn and record the load shift under `mode`.
/// Broken flows recover onto alternate slices (the post-recovery steady
/// state — failures *add* load to surviving links, which is the shift
/// pressure §5 asks about).
pub fn single_link_failure_sweep(
    splicing: &Splicing,
    g: &Graph,
    tm: &TrafficMatrix,
    mode: RoutingMode,
) -> Vec<ShiftResult> {
    let up = EdgeMask::all_up(g.edge_count());
    let before: LoadReport = link_loads(splicing, g, tm, mode, &up);
    let peak_before = before.max();
    g.edge_ids()
        .map(|e| {
            let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
            let after = link_loads_with_recovery(splicing, g, tm, mode, &mask);
            // Peak over *surviving* links.
            let peak_after = after
                .per_edge
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != e.index())
                .map(|(_, &l)| l)
                .fold(0.0, f64::max);
            ShiftResult {
                failed: e,
                peak_before,
                peak_after,
                undelivered: after.undelivered,
                stranded_flows: after.stranded_flows,
            }
        })
        .collect()
}

/// The worst relative peak increase over all single-link failures.
pub fn worst_case_shift(results: &[ShiftResult]) -> f64 {
    results
        .iter()
        .map(ShiftResult::peak_increase)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::slices::SplicingConfig;
    use splice_topology::abilene::abilene;

    fn setup() -> (Graph, Splicing, TrafficMatrix) {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 9);
        let tm = TrafficMatrix::gravity(&g, 100.0, 1);
        (g, sp, tm)
    }

    #[test]
    fn sweep_covers_all_links() {
        let (g, sp, tm) = setup();
        let res = single_link_failure_sweep(&sp, &g, &tm, RoutingMode::HashSpread);
        assert_eq!(res.len(), g.edge_count());
        for r in &res {
            assert!(r.peak_after >= 0.0);
            assert!(r.undelivered >= 0.0);
        }
    }

    #[test]
    fn equal_split_fully_strands_fewer_flows() {
        // A flow loses *everything* under EqualSplit only if every slice's
        // path died — which implies slice 0's died too, so the set of
        // fully stranded flows can only shrink versus single-path routing.
        let (g, sp, tm) = setup();
        let single = single_link_failure_sweep(&sp, &g, &tm, RoutingMode::ShortestPath);
        let split = single_link_failure_sweep(&sp, &g, &tm, RoutingMode::EqualSplit);
        for (a, b) in single.iter().zip(&split) {
            assert!(
                b.stranded_flows <= a.stranded_flows,
                "link {:?}: split strands {} flows, single {}",
                a.failed,
                b.stranded_flows,
                a.stranded_flows
            );
        }
    }

    #[test]
    fn worst_case_shift_is_finite_and_nonnegative() {
        let (g, sp, tm) = setup();
        let res = single_link_failure_sweep(&sp, &g, &tm, RoutingMode::HashSpread);
        let w = worst_case_shift(&res);
        assert!(w >= 0.0);
        assert!(w.is_finite());
    }

    #[test]
    fn peak_increase_math() {
        let r = ShiftResult {
            failed: EdgeId(0),
            peak_before: 10.0,
            peak_after: 12.0,
            undelivered: 0.0,
            stranded_flows: 0,
        };
        assert!((r.peak_increase() - 0.2).abs() < 1e-12);
        let z = ShiftResult {
            failed: EdgeId(0),
            peak_before: 0.0,
            peak_after: 5.0,
            undelivered: 0.0,
            stranded_flows: 0,
        };
        assert_eq!(z.peak_increase(), 0.0);
    }
}
