//! Traffic matrices.
//!
//! The gravity model is the standard synthetic ISP workload: node "masses"
//! (here: degree-weighted with a random factor, mimicking PoP size) and
//! demand proportional to the product of endpoint masses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_graph::{Graph, NodeId};

/// A dense origin–destination demand matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `demand[s * n + t]`; zero on the diagonal.
    demand: Vec<f64>,
}

impl TrafficMatrix {
    /// Uniform demand `d` between every ordered pair.
    pub fn uniform(n: usize, d: f64) -> TrafficMatrix {
        let mut demand = vec![d; n * n];
        for i in 0..n {
            demand[i * n + i] = 0.0;
        }
        TrafficMatrix { n, demand }
    }

    /// Gravity model: node mass = degree × lognormal-ish random factor;
    /// demand(s, t) ∝ mass(s)·mass(t), normalized so total demand is
    /// `total`.
    pub fn gravity(g: &Graph, total: f64, seed: u64) -> TrafficMatrix {
        let n = g.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let masses: Vec<f64> = g
            .nodes()
            .map(|u| g.degree(u) as f64 * rng.gen_range(0.5..2.0))
            .collect();
        let mut demand = vec![0.0; n * n];
        let mut sum = 0.0;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    let d = masses[s] * masses[t];
                    demand[s * n + t] = d;
                    sum += d;
                }
            }
        }
        if sum > 0.0 {
            for d in &mut demand {
                *d *= total / sum;
            }
        }
        TrafficMatrix { n, demand }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Demand from `s` to `t`.
    #[inline]
    pub fn demand(&self, s: NodeId, t: NodeId) -> f64 {
        self.demand[s.index() * self.n + t.index()]
    }

    /// Total offered load.
    pub fn total(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// All ordered pairs with positive demand.
    pub fn flows(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n as u32).flat_map(move |s| {
            (0..self.n as u32).filter_map(move |t| {
                let d = self.demand[s as usize * self.n + t as usize];
                (d > 0.0).then_some((NodeId(s), NodeId(t), d))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    #[test]
    fn uniform_matrix() {
        let m = TrafficMatrix::uniform(4, 2.0);
        assert_eq!(m.demand(NodeId(0), NodeId(1)), 2.0);
        assert_eq!(m.demand(NodeId(2), NodeId(2)), 0.0);
        assert_eq!(m.total(), 2.0 * 12.0);
        assert_eq!(m.flows().count(), 12);
    }

    #[test]
    fn gravity_normalizes_and_respects_degree() {
        let g = abilene().graph();
        let m = TrafficMatrix::gravity(&g, 100.0, 7);
        assert!((m.total() - 100.0).abs() < 1e-9);
        // No self-demand.
        for u in g.nodes() {
            assert_eq!(m.demand(u, u), 0.0);
        }
        // Bigger-degree nodes attract more demand on average.
        let deg_of = |i: u32| g.degree(NodeId(i));
        let into: Vec<f64> = g
            .nodes()
            .map(|t| g.nodes().map(|s| m.demand(s, t)).sum::<f64>())
            .collect();
        let (hub, _) = into
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(
            deg_of(hub as u32) >= 3,
            "highest-demand node should be a hub, got degree {}",
            deg_of(hub as u32)
        );
    }

    #[test]
    fn gravity_deterministic() {
        let g = abilene().graph();
        assert_eq!(
            TrafficMatrix::gravity(&g, 10.0, 1),
            TrafficMatrix::gravity(&g, 10.0, 1)
        );
    }
}
