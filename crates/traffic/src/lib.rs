//! # splice-traffic
//!
//! The traffic-engineering side of path splicing (§5 of the paper).
//!
//! The paper raises three traffic questions and leaves them as future
//! work; this crate builds the experiments:
//!
//! * **"Automatic" load balancing** ([`load`]): when sources pick their
//!   initial slice by flow hash (Algorithm 1's default branch), traffic
//!   spreads over k trees even with no failures. We compare link
//!   utilization under single shortest-path routing, hash-spread
//!   splicing, and explicit multipath splitting.
//! * **Selfish-routing shifts** ([`shift`]): when a link fails and every
//!   affected flow re-routes via splicing, how much load lands on the
//!   busiest surviving link?
//! * **Capacity** ([`capacity`]): §5 suggests splicing bits could let end
//!   hosts "achieve throughput that approaches the capacity of the
//!   underlying graph"; we measure the max-flow of the union-of-slices
//!   subgraph against the full graph's.
//!
//! Demands come from a gravity-model [`matrix::TrafficMatrix`]; the
//! tuned single-path baseline §5 compares against is built by
//! [`optimize`]'s Fortz–Thorup-style weight search.

//! A fourth, engine-facing piece rides along: [`flows`] generates the
//! seeded, Zipf-skewed, per-shard-deterministic packet streams the
//! batch forwarding engine and its differential oracle consume.

pub mod capacity;
pub mod flows;
pub mod load;
pub mod matrix;
pub mod optimize;
pub mod shift;

pub use flows::{FlowConfig, FlowGen, FlowStream};
pub use load::{LoadReport, RoutingMode};
pub use matrix::TrafficMatrix;
