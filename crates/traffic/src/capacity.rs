//! Multipath capacity (§5 "other applications").
//!
//! "End hosts could set splicing bits in packets to simultaneously use
//! disjoint paths … allowing hosts to achieve throughput that approaches
//! the capacity of the underlying graph." What an end host can actually
//! drive traffic over is the per-destination successor graph — at each
//! node, the next hops the k slices offer toward `t` — so the achievable
//! throughput for `(s, t)` is the max-flow of that *directed* structure,
//! and the bound is the full graph's s–t max-flow. This module measures
//! the ratio as `k` grows.
//!
//! (The union of *all* trees toward *all* destinations is much denser —
//! with metric weights every link is the shortest path between its own
//! endpoints, so that union is trivially the whole graph. The directed
//! per-destination view is the one the forwarding bits can exercise.)

use splice_core::slices::Splicing;
use splice_graph::maxflow::{succ_connectivity, FlowNetwork};
use splice_graph::{EdgeMask, Graph, NodeId};

/// Max-flow between `s` and `t` restricted to edges with `allowed` set
/// (unit capacity per physical edge).
pub fn restricted_max_flow(g: &Graph, allowed: &[bool], s: NodeId, t: NodeId) -> usize {
    assert_eq!(allowed.len(), g.edge_count());
    let mut net = FlowNetwork::new(g.node_count());
    for (i, e) in g.edges().iter().enumerate() {
        if allowed[i] {
            net.add_undirected_unit(e.u.index(), e.v.index());
        }
    }
    net.max_flow(s.index(), t.index()) as usize
}

/// Mean ratio of splicing-achievable throughput (arc-disjoint paths in
/// the successor graph toward each destination) to the full graph's s–t
/// max-flow, over all ordered pairs, for each `k` in `1..=splicing.k()`.
///
/// Ratio → 1 means splicing exposes the graph's full multipath capacity.
pub fn capacity_ratio_by_k(splicing: &Splicing, g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let all = vec![true; g.edge_count()];
    let up = EdgeMask::all_up(g.edge_count());
    let mut full = vec![vec![0usize; n]; n];
    for s in 0..n as u32 {
        for t in 0..n as u32 {
            if s != t {
                full[s as usize][t as usize] = restricted_max_flow(g, &all, NodeId(s), NodeId(t));
            }
        }
    }
    (1..=splicing.k())
        .map(|k| {
            let mut sum = 0.0;
            let mut count = 0usize;
            for t in 0..n as u32 {
                let succ = splicing.successors_toward(NodeId(t), k, &up);
                for s in 0..n as u32 {
                    if s == t || full[s as usize][t as usize] == 0 {
                        continue;
                    }
                    let got = succ_connectivity(&succ, NodeId(s), NodeId(t));
                    sum += got as f64 / full[s as usize][t as usize] as f64;
                    count += 1;
                }
            }
            sum / count as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::slices::SplicingConfig;
    use splice_topology::abilene::abilene;

    #[test]
    fn ratio_grows_from_single_path_toward_capacity() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(8, 0.0, 3.0), 17);
        let ratios = capacity_ratio_by_k(&sp, &g);
        assert_eq!(ratios.len(), 8);
        for w in ratios.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "ratio must be monotone in k");
        }
        // One slice = one path per pair; Abilene pairs have capacity >= 2,
        // so the ratio sits at or below 1/2.
        assert!(ratios[0] <= 0.51, "k=1 ratio {}", ratios[0]);
        assert!(ratios[7] > ratios[0] + 0.1, "splicing should add capacity");
        assert!(ratios[7] <= 1.0 + 1e-12);
    }

    #[test]
    fn restricted_flow_with_everything_allowed_matches_full() {
        let g = abilene().graph();
        let all = vec![true; g.edge_count()];
        let f = restricted_max_flow(&g, &all, NodeId(0), NodeId(10));
        assert!(f >= 2, "Abilene is 2-connected, got {f}");
        let none = vec![false; g.edge_count()];
        assert_eq!(restricted_max_flow(&g, &none, NodeId(0), NodeId(10)), 0);
    }
}
