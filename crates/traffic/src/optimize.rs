//! Conventional link-weight optimization — the comparator §5 names.
//!
//! "Path splicing spreads traffic across the network even in the absence
//! of failure … this 'automatic' load balancing might mitigate the need
//! for various tuning that is necessary with today's routing protocols
//! [Fortz–Thorup]." To measure that, we need the tuned baseline: a
//! local-search optimizer in the Fortz–Thorup style that adjusts OSPF
//! weights to minimize the network's congestion cost for a given traffic
//! matrix.
//!
//! This is deliberately the *simple* variant: single-path routing (our
//! substrate has no ECMP), integer weight moves, first-improvement hill
//! climbing with restarts — enough to produce a competently tuned weight
//! setting, not a research-grade TE engine.

use crate::load::{link_loads, RoutingMode};
use crate::matrix::TrafficMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::{EdgeMask, Graph};

/// The Fortz–Thorup piecewise-linear congestion cost of a utilization
/// `u` (load / capacity). Convex, exploding past 100%.
pub fn congestion_cost(u: f64) -> f64 {
    // Segment slopes from the original paper.
    let segments = [
        (0.0, 1.0),
        (1.0 / 3.0, 3.0),
        (2.0 / 3.0, 10.0),
        (0.9, 70.0),
        (1.0, 500.0),
        (1.1, 5000.0),
    ];
    let mut cost = 0.0;
    let mut prev_x = 0.0;
    let mut slope = 0.0;
    for &(x, s) in &segments {
        if u <= x {
            return cost + slope * (u - prev_x);
        }
        cost += slope * (x - prev_x);
        prev_x = x;
        slope = s;
    }
    cost + slope * (u - prev_x)
}

/// Network-wide cost of a weight setting: sum of per-link congestion
/// costs under single-shortest-path routing of `tm`, with every link's
/// capacity `capacity`.
pub fn network_cost(g: &Graph, weights: &[f64], tm: &TrafficMatrix, capacity: f64) -> f64 {
    // Route over a splicing with k = 1 whose slice-0 weights are `weights`.
    let splicing = splicing_for(g, weights);
    let mask = EdgeMask::all_up(g.edge_count());
    let report = link_loads(&splicing, g, tm, RoutingMode::ShortestPath, &mask);
    report
        .per_edge
        .iter()
        .map(|&l| congestion_cost(l / capacity))
        .sum::<f64>()
        + report.undelivered * 1e6 // stranded demand is intolerable
}

fn splicing_for(g: &Graph, weights: &[f64]) -> Splicing {
    // Build a 1-slice deployment with custom weights by rebuilding the
    // graph's base weights. Cheapest correct path: construct tables
    // directly.
    use splice_core::slices::Slice;
    let tables = splice_routing::spf::spf_from_weights(g, weights);
    Splicing::from_slices(vec![Slice {
        id: 0,
        weights: weights.to_vec(),
        tables,
    }])
}

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizedWeights {
    /// The tuned weight vector.
    pub weights: Vec<f64>,
    /// Cost before tuning (base weights).
    pub initial_cost: f64,
    /// Cost after tuning.
    pub final_cost: f64,
    /// Accepted moves.
    pub moves: usize,
}

/// Fortz–Thorup-style local search: repeatedly pick a link and try
/// scaling its weight by a random factor; keep improvements. `budget` is
/// the number of candidate moves examined.
pub fn optimize_weights(
    g: &Graph,
    tm: &TrafficMatrix,
    capacity: f64,
    budget: usize,
    seed: u64,
) -> OptimizedWeights {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = g.base_weights();
    let initial_cost = network_cost(g, &weights, tm, capacity);
    let mut cost = initial_cost;
    let mut moves = 0usize;
    for _ in 0..budget {
        let e = rng.gen_range(0..g.edge_count());
        let old = weights[e];
        // Multiplicative moves explore scale changes; clamp to sane range.
        let factor = *[0.5, 0.8, 1.25, 2.0, 4.0]
            .get(rng.gen_range(0..5))
            .expect("in range");
        weights[e] = (old * factor).clamp(0.25, 1e4);
        let candidate = network_cost(g, &weights, tm, capacity);
        if candidate < cost {
            cost = candidate;
            moves += 1;
        } else {
            weights[e] = old;
        }
    }
    OptimizedWeights {
        weights,
        initial_cost,
        final_cost: cost,
        moves,
    }
}

/// Max link utilization of a routing mode under `tm` (load / capacity).
pub fn max_utilization(
    splicing: &Splicing,
    g: &Graph,
    tm: &TrafficMatrix,
    mode: RoutingMode,
    capacity: f64,
) -> f64 {
    let mask = EdgeMask::all_up(g.edge_count());
    link_loads(splicing, g, tm, mode, &mask).max() / capacity
}

/// Convenience: the three-way §5 comparison on one topology/matrix —
/// (untuned single-path, tuned single-path, splicing hash-spread,
/// splicing equal-split) max utilizations.
pub fn te_comparison(
    g: &Graph,
    tm: &TrafficMatrix,
    capacity: f64,
    budget: usize,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let base = splicing_for(g, &g.base_weights());
    let untuned = max_utilization(&base, g, tm, RoutingMode::ShortestPath, capacity);

    let opt = optimize_weights(g, tm, capacity, budget, seed);
    let tuned_sp = splicing_for(g, &opt.weights);
    let tuned = max_utilization(&tuned_sp, g, tm, RoutingMode::ShortestPath, capacity);

    let spliced = Splicing::build(g, &SplicingConfig::degree_based(5, 0.0, 3.0), seed);
    let hash = max_utilization(&spliced, g, tm, RoutingMode::HashSpread, capacity);
    let split = max_utilization(&spliced, g, tm, RoutingMode::EqualSplit, capacity);
    (untuned, tuned, hash, split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    #[test]
    fn cost_function_shape() {
        assert_eq!(congestion_cost(0.0), 0.0);
        assert!(congestion_cost(0.3) < congestion_cost(0.6));
        assert!(congestion_cost(0.95) < congestion_cost(1.05));
        // Convexity at the sampled knots.
        let (a, b, c) = (
            congestion_cost(0.5),
            congestion_cost(0.75),
            congestion_cost(1.0),
        );
        assert!(b - a < c - b, "marginal cost must grow");
        // Continuity at a knot.
        let eps = 1e-9;
        assert!((congestion_cost(0.9 + eps) - congestion_cost(0.9 - eps)).abs() < 1e-6);
    }

    #[test]
    fn optimization_never_hurts() {
        let g = abilene().graph();
        let tm = TrafficMatrix::gravity(&g, 300.0, 2);
        let out = optimize_weights(&g, &tm, 100.0, 150, 7);
        assert!(out.final_cost <= out.initial_cost);
        assert_eq!(out.weights.len(), g.edge_count());
        assert!(out.weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn tuning_beats_untuned_on_skewed_load() {
        let g = abilene().graph();
        let tm = TrafficMatrix::gravity(&g, 500.0, 5);
        let (untuned, tuned, _, _) = te_comparison(&g, &tm, 100.0, 250, 3);
        assert!(
            tuned <= untuned + 1e-9,
            "tuned {tuned} should not exceed untuned {untuned}"
        );
    }

    #[test]
    fn deterministic() {
        let g = abilene().graph();
        let tm = TrafficMatrix::gravity(&g, 300.0, 2);
        let a = optimize_weights(&g, &tm, 100.0, 100, 9);
        let b = optimize_weights(&g, &tm, 100.0, 100, 9);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.final_cost, b.final_cost);
    }
}
