//! Link loads under different routing modes.
//!
//! Demands are routed hop-by-hop over the splicing FIBs; per-link loads
//! accumulate. Three modes:
//!
//! * [`RoutingMode::ShortestPath`] — everything in slice 0 (today's
//!   routing, the Fortz–Thorup-tuned baseline's structure);
//! * [`RoutingMode::HashSpread`] — each flow pinned to its
//!   `Hash(src, dst)` slice, Algorithm 1's default: splicing's "automatic"
//!   load balancing with zero configuration;
//! * [`RoutingMode::EqualSplit`] — each flow split equally over all k
//!   slice paths, the explicit-multipath upper bound on spreading.

use crate::matrix::TrafficMatrix;
use splice_core::hash::slice_for_flow;
use splice_core::slices::Splicing;
use splice_graph::{EdgeMask, Graph, NodeId};

/// How demands map onto slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// All demand in slice 0.
    ShortestPath,
    /// Flow-hash slice selection.
    HashSpread,
    /// Demand split equally across every slice's path.
    EqualSplit,
}

/// Per-link load summary.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadReport {
    /// Load carried by each link (edge-id indexed).
    pub per_edge: Vec<f64>,
    /// Demand that could not be delivered (no route).
    pub undelivered: f64,
    /// Flows that delivered nothing at all (in `EqualSplit`, a flow with
    /// any surviving slice path is not counted here).
    pub stranded_flows: usize,
}

impl LoadReport {
    /// The busiest link's load.
    pub fn max(&self) -> f64 {
        self.per_edge.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean load over all links (the standard utilization denominator).
    pub fn mean(&self) -> f64 {
        if self.per_edge.is_empty() {
            0.0
        } else {
            self.per_edge.iter().sum::<f64>() / self.per_edge.len() as f64
        }
    }

    /// Coefficient of variation (std / mean) — lower is better balanced.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m <= 0.0 {
            return 0.0;
        }
        let var =
            self.per_edge.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.per_edge.len() as f64;
        var.sqrt() / m
    }
}

/// Route one unit along the slice path from `s` to `t`, adding `amount`
/// to each traversed link. Returns false if the walk dead-ends (failed
/// link, no route) — the caller counts the demand undelivered.
#[allow(clippy::too_many_arguments)] // a flow is naturally 5-tuple + context
fn route_flow(
    splicing: &Splicing,
    g: &Graph,
    mask: &EdgeMask,
    slice: usize,
    s: NodeId,
    t: NodeId,
    amount: f64,
    per_edge: &mut [f64],
) -> bool {
    let mut at = s;
    let mut hops = 0;
    // Record tentatively; only commit on success.
    let mut touched: Vec<usize> = Vec::new();
    while at != t {
        let Some((next, e)) = splicing.next_hop(slice, at, t) else {
            return false;
        };
        if mask.is_failed(e) {
            return false;
        }
        touched.push(e.index());
        at = next;
        hops += 1;
        if hops > g.node_count() {
            return false; // corrupted FIB; trees cannot loop, but be safe
        }
    }
    for i in touched {
        per_edge[i] += amount;
    }
    true
}

/// Compute link loads for `tm` under `mode` with the links in `mask`
/// failed. Flows whose path is broken are stranded (no rerouting); see
/// [`link_loads_with_recovery`] for the post-failure steady state.
pub fn link_loads(
    splicing: &Splicing,
    g: &Graph,
    tm: &TrafficMatrix,
    mode: RoutingMode,
    mask: &EdgeMask,
) -> LoadReport {
    let mut per_edge = vec![0.0; g.edge_count()];
    let mut undelivered = 0.0;
    let mut stranded_flows = 0usize;
    let k = splicing.k();
    for (s, t, d) in tm.flows() {
        match mode {
            RoutingMode::ShortestPath => {
                if !route_flow(splicing, g, mask, 0, s, t, d, &mut per_edge) {
                    undelivered += d;
                    stranded_flows += 1;
                }
            }
            RoutingMode::HashSpread => {
                let slice = slice_for_flow(s, t, k);
                if !route_flow(splicing, g, mask, slice, s, t, d, &mut per_edge) {
                    undelivered += d;
                    stranded_flows += 1;
                }
            }
            RoutingMode::EqualSplit => {
                let share = d / k as f64;
                let mut delivered_any = false;
                for slice in 0..k {
                    if route_flow(splicing, g, mask, slice, s, t, share, &mut per_edge) {
                        delivered_any = true;
                    } else {
                        undelivered += share;
                    }
                }
                if !delivered_any {
                    stranded_flows += 1;
                }
            }
        }
    }
    LoadReport {
        per_edge,
        undelivered,
        stranded_flows,
    }
}

/// Like [`link_loads`], but flows whose primary slice path broke recover
/// onto the first slice (in id order) with a working path — the
/// post-recovery steady state the §5 "selfish routing" question is about.
/// Only flows with *no* working slice path are stranded.
pub fn link_loads_with_recovery(
    splicing: &Splicing,
    g: &Graph,
    tm: &TrafficMatrix,
    mode: RoutingMode,
    mask: &EdgeMask,
) -> LoadReport {
    let mut per_edge = vec![0.0; g.edge_count()];
    let mut undelivered = 0.0;
    let mut stranded_flows = 0usize;
    let k = splicing.k();
    for (s, t, d) in tm.flows() {
        let primary = match mode {
            RoutingMode::ShortestPath => 0,
            RoutingMode::HashSpread => slice_for_flow(s, t, k),
            // Equal-split recovers each share independently below.
            RoutingMode::EqualSplit => 0,
        };
        let route_with_fallback = |primary: usize, amount: f64, per_edge: &mut [f64]| -> bool {
            if route_flow(splicing, g, mask, primary, s, t, amount, per_edge) {
                return true;
            }
            (0..k)
                .filter(|&slice| slice != primary)
                .any(|slice| route_flow(splicing, g, mask, slice, s, t, amount, per_edge))
        };
        match mode {
            RoutingMode::ShortestPath | RoutingMode::HashSpread => {
                if !route_with_fallback(primary, d, &mut per_edge) {
                    undelivered += d;
                    stranded_flows += 1;
                }
            }
            RoutingMode::EqualSplit => {
                let share = d / k as f64;
                let mut delivered_any = false;
                for slice in 0..k {
                    if route_with_fallback(slice, share, &mut per_edge) {
                        delivered_any = true;
                    } else {
                        undelivered += share;
                    }
                }
                if !delivered_any {
                    stranded_flows += 1;
                }
            }
        }
    }
    LoadReport {
        per_edge,
        undelivered,
        stranded_flows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::slices::SplicingConfig;
    use splice_topology::abilene::abilene;

    fn setup() -> (Graph, Splicing, TrafficMatrix) {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 9);
        let tm = TrafficMatrix::gravity(&g, 100.0, 1);
        (g, sp, tm)
    }

    #[test]
    fn conservation_no_failures() {
        let (g, sp, tm) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        for mode in [
            RoutingMode::ShortestPath,
            RoutingMode::HashSpread,
            RoutingMode::EqualSplit,
        ] {
            let report = link_loads(&sp, &g, &tm, mode, &mask);
            assert_eq!(report.undelivered, 0.0, "{mode:?}");
            assert!(report.max() > 0.0);
            // Total link load >= total demand (paths have >= 1 hop).
            let carried: f64 = report.per_edge.iter().sum();
            assert!(carried >= tm.total() - 1e-6, "{mode:?}");
        }
    }

    #[test]
    fn spreading_reduces_peak_load() {
        let (g, sp, tm) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let single = link_loads(&sp, &g, &tm, RoutingMode::ShortestPath, &mask);
        let split = link_loads(&sp, &g, &tm, RoutingMode::EqualSplit, &mask);
        // Splitting across slices cannot concentrate more than slice 0 does
        // on this workload; peak should drop (or at least not grow much).
        assert!(
            split.max() <= single.max() * 1.05,
            "split {} vs single {}",
            split.max(),
            single.max()
        );
    }

    #[test]
    fn failures_strand_demand_in_single_path_mode() {
        let (g, sp, tm) = setup();
        // Fail slice 0's Seattle uplink used toward many destinations.
        let (_, e) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
        let report = link_loads(&sp, &g, &tm, RoutingMode::ShortestPath, &mask);
        assert!(report.undelivered > 0.0);
    }

    #[test]
    fn recovery_routing_reduces_stranding() {
        let (g, sp, tm) = setup();
        let (_, e) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
        let plain = link_loads(&sp, &g, &tm, RoutingMode::ShortestPath, &mask);
        let recovered = link_loads_with_recovery(&sp, &g, &tm, RoutingMode::ShortestPath, &mask);
        assert!(recovered.undelivered <= plain.undelivered);
        assert!(recovered.stranded_flows <= plain.stranded_flows);
        // Recovered demand rides longer paths: total carried load grows.
        let carried = |r: &LoadReport| r.per_edge.iter().sum::<f64>();
        assert!(carried(&recovered) >= carried(&plain) - 1e-9);
    }

    #[test]
    fn recovery_routing_no_failures_is_identity() {
        let (g, sp, tm) = setup();
        let up = EdgeMask::all_up(g.edge_count());
        for mode in [
            RoutingMode::ShortestPath,
            RoutingMode::HashSpread,
            RoutingMode::EqualSplit,
        ] {
            let a = link_loads(&sp, &g, &tm, mode, &up);
            let b = link_loads_with_recovery(&sp, &g, &tm, mode, &up);
            assert_eq!(a, b, "{mode:?}");
        }
    }

    #[test]
    fn report_metrics() {
        let report = LoadReport {
            per_edge: vec![1.0, 3.0, 2.0, 2.0],
            undelivered: 0.0,
            stranded_flows: 0,
        };
        assert_eq!(report.max(), 3.0);
        assert_eq!(report.mean(), 2.0);
        assert!(report.cv() > 0.0);
        let flat = LoadReport {
            per_edge: vec![2.0; 4],
            undelivered: 0.0,
            stranded_flows: 0,
        };
        assert_eq!(flat.cv(), 0.0);
    }

    #[test]
    fn empty_report() {
        let r = LoadReport {
            per_edge: vec![],
            undelivered: 0.0,
            stranded_flows: 0,
        };
        assert_eq!(r.max(), 0.0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.cv(), 0.0);
    }
}
