//! Seeded flow generation for forwarding workloads.
//!
//! The batch forwarding engine wants "heavy traffic from millions of
//! users": a packet stream whose destination popularity is skewed (a
//! few hot destinations take most packets, per the usual Zipf shape of
//! real traffic), whose header bits vary per flow, and — because every
//! engine and every shard must be comparable — whose content is a pure
//! function of `(seed, shard, index)`. No `rand` here: streams are
//! raw splitmix64 so the same seed produces the same packets on every
//! engine, shard layout, and platform, which is what lets the
//! differential oracle and the cross-engine checksum gates exist.
//!
//! * [`FlowConfig`] — the workload shape: node count, slice count,
//!   Zipf exponent, header length, seed.
//! * [`FlowGen`] — precomputed cumulative Zipf weights plus a
//!   seed-derived rank→node permutation (so the hot nodes differ per
//!   seed, not always node 0).
//! * [`FlowStream`] — one shard's deterministic packet iterator;
//!   distinct shards get decorrelated splitmix64 streams derived from
//!   the base seed.

use splice_core::hash::{splitmix64, splitmix64_mix};
use splice_core::header::ForwardingBits;

/// Workload shape for a generated packet stream.
#[derive(Clone, Copy, Debug)]
pub struct FlowConfig {
    /// Number of nodes (sources and destinations are node indices).
    pub nodes: u32,
    /// Slices the headers select over.
    pub k: usize,
    /// Zipf exponent for destination popularity: 0 = uniform, ~1 =
    /// classic web-traffic skew. Applied over a seeded rank→node map.
    pub zipf_exponent: f64,
    /// Hops of forwarding bits per header (0..=this, varied per flow).
    pub header_hops: usize,
    /// Base seed; everything downstream derives from it.
    pub seed: u64,
}

impl FlowConfig {
    /// A reasonable default workload over `nodes` nodes: web-like skew
    /// (exponent 0.9), up to 4 header hops.
    pub fn new(nodes: u32, k: usize, seed: u64) -> FlowConfig {
        FlowConfig {
            nodes,
            k,
            zipf_exponent: 0.9,
            header_hops: 4,
            seed,
        }
    }
}

/// Precomputed destination-popularity tables shared by every shard's
/// stream. Build once, hand out [`FlowStream`]s.
#[derive(Clone, Debug)]
pub struct FlowGen {
    config: FlowConfig,
    /// Cumulative Zipf weights over popularity ranks, normalized to
    /// `u64::MAX` so sampling is one integer binary search per packet.
    cumulative: Vec<u64>,
    /// `rank_to_node[r]` = node holding popularity rank `r`, a
    /// seed-derived permutation.
    rank_to_node: Vec<u32>,
}

impl FlowGen {
    /// Precompute the Zipf tables for `config`.
    ///
    /// # Panics
    /// Panics on an empty node set or `k == 0`.
    pub fn new(config: FlowConfig) -> FlowGen {
        assert!(config.nodes > 0, "need at least one node");
        assert!(config.k >= 1, "need at least one slice");
        let n = config.nodes as usize;

        // Zipf weights rank^-a, folded into a cumulative table scaled to
        // the full u64 range: drawing a uniform u64 and binary-searching
        // gives the rank, with no floating point at generation time.
        let weights: Vec<f64> = (0..n)
            .map(|r| (r as f64 + 1.0).powf(-config.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push((acc.min(1.0) * u64::MAX as f64) as u64);
        }
        // Guard against float rounding leaving the tail unreachable.
        *cumulative.last_mut().expect("non-empty") = u64::MAX;

        // Seeded Fisher–Yates over node ids: which node gets which rank.
        let mut rank_to_node: Vec<u32> = (0..config.nodes).collect();
        let mut state = splitmix64(config.seed ^ 0x5eed_f70e_5eed_f70e);
        for i in (1..n).rev() {
            state = splitmix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            rank_to_node.swap(i, j);
        }

        FlowGen {
            config,
            cumulative,
            rank_to_node,
        }
    }

    /// The workload shape this generator was built for.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Shard `shard`'s packet stream: deterministic in
    /// `(config.seed, shard)` and decorrelated across shards.
    pub fn stream(&self, shard: usize) -> FlowStream<'_> {
        FlowStream {
            gen: self,
            // Decorrelate shards by mixing the shard id into the seed
            // through two full splitmix rounds.
            state: splitmix64(self.config.seed ^ splitmix64(shard as u64 + 1)),
        }
    }

    /// Map a uniform `u64` draw to a destination node via the Zipf
    /// cumulative table and the rank permutation.
    fn dst_for_draw(&self, draw: u64) -> u32 {
        let rank = self.cumulative.partition_point(|&c| c < draw);
        self.rank_to_node[rank.min(self.rank_to_node.len() - 1)]
    }
}

/// One shard's endless deterministic packet stream.
#[derive(Clone, Debug)]
pub struct FlowStream<'a> {
    gen: &'a FlowGen,
    state: u64,
}

impl FlowStream<'_> {
    /// Next raw splitmix64 word.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64_mix(self.state)
    }

    /// Generate the next packet: Zipf-skewed destination, uniform
    /// source resampled until it differs from the destination (when the
    /// topology has more than one node), and `0..=header_hops` hops of
    /// header bits.
    pub fn next_packet(&mut self) -> (u32, u32, ForwardingBits) {
        let cfg = self.gen.config;
        let dst = self.gen.dst_for_draw(self.next_u64());
        let mut src = (self.next_u64() % cfg.nodes as u64) as u32;
        while src == dst && cfg.nodes > 1 {
            src = (self.next_u64() % cfg.nodes as u64) as u32;
        }
        let mut hops = [0u8; 16];
        let word = self.next_u64();
        let count = if cfg.header_hops == 0 {
            0
        } else {
            (word % (cfg.header_hops as u64 + 1)) as usize
        };
        let mut bits = self.next_u64();
        for h in hops.iter_mut().take(count) {
            *h = (bits % cfg.k as u64) as u8;
            bits = bits.rotate_right(8);
        }
        (src, dst, ForwardingBits::from_hops(&hops[..count], cfg.k))
    }

    /// Fill `buf` with the next `n` packets (clearing it first).
    pub fn fill_burst(&mut self, n: usize, buf: &mut Vec<(u32, u32, ForwardingBits)>) {
        buf.clear();
        buf.reserve(n);
        for _ in 0..n {
            buf.push(self.next_packet());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(nodes: u32, seed: u64) -> FlowGen {
        FlowGen::new(FlowConfig::new(nodes, 4, seed))
    }

    /// Satellite check: a fixed seed reproduces the byte-identical
    /// stream, run to run and regardless of other shards being drawn.
    #[test]
    fn fixed_seed_is_deterministic() {
        let g1 = gen(50, 42);
        let g2 = gen(50, 42);
        let mut a = g1.stream(3);
        let mut b = g2.stream(3);
        for _ in 0..10_000 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
        // Drawing shard 0 from g2 must not perturb shard 3's stream.
        let mut other = g2.stream(0);
        for _ in 0..100 {
            other.next_packet();
        }
        let mut b2 = g2.stream(3);
        let mut a2 = g1.stream(3);
        for _ in 0..1000 {
            assert_eq!(a2.next_packet(), b2.next_packet());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (g1, g2) = (gen(50, 1), gen(50, 2));
        let (mut a, mut b) = (g1.stream(0), g2.stream(0));
        let same = (0..1000)
            .filter(|_| a.next_packet() == b.next_packet())
            .count();
        assert!(same < 50, "seeds should decorrelate streams: {same}");
    }

    /// Satellite check: shard streams are pairwise decorrelated — the
    /// fraction of colliding (src, dst, header) draws at the same index
    /// stays near the birthday-expected rate rather than near 1.
    #[test]
    fn shard_streams_are_independent() {
        let g = gen(30, 7);
        let mut streams: Vec<_> = (0..4).map(|s| g.stream(s)).collect();
        let draws: Vec<Vec<_>> = streams
            .iter_mut()
            .map(|st| (0..2000).map(|_| st.next_packet()).collect())
            .collect();
        for i in 0..draws.len() {
            for j in (i + 1)..draws.len() {
                let collisions = draws[i]
                    .iter()
                    .zip(&draws[j])
                    .filter(|(a, b)| a == b)
                    .count();
                // Same-index equality needs the same dst (zipf), src, and
                // header; even generously that's ~1/nodes ≈ 3% per draw.
                assert!(
                    collisions < 200,
                    "shards {i},{j} collide {collisions}/2000 times"
                );
            }
        }
    }

    /// Satellite check: the destination marginal actually has the Zipf
    /// shape — the hottest destination clearly beats the median one,
    /// and an exponent-0 config is near-uniform.
    #[test]
    fn zipf_skew_shape() {
        let g = gen(40, 9);
        let mut counts = vec![0u64; 40];
        let mut st = g.stream(0);
        let total = 40_000;
        for _ in 0..total {
            counts[st.next_packet().1 as usize] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // rank1/rank2 ≈ 2^0.9 ≈ 1.87; allow slack for sampling noise.
        assert!(
            sorted[0] as f64 >= 1.4 * sorted[1] as f64,
            "rank 1 ({}) should dominate rank 2 ({})",
            sorted[0],
            sorted[1]
        );
        assert!(
            sorted[0] as f64 >= 5.0 * sorted[20] as f64,
            "rank 1 ({}) should dwarf rank 21 ({})",
            sorted[0],
            sorted[20]
        );
        // Every destination is still reachable in a big enough sample.
        assert!(sorted.last().copied().unwrap_or(0) > 0);

        // Exponent 0: uniform — max/min within sampling noise.
        let uniform_gen = FlowGen::new(FlowConfig {
            zipf_exponent: 0.0,
            ..*g.config()
        });
        let mut uni = uniform_gen.stream(0);
        let mut ucounts = vec![0u64; 40];
        for _ in 0..total {
            ucounts[uni.next_packet().1 as usize] += 1;
        }
        let (min, max) = (
            ucounts.iter().min().copied().unwrap(),
            ucounts.iter().max().copied().unwrap(),
        );
        assert!(
            (max as f64) < 1.5 * min as f64,
            "uniform draw spread too wide: {min}..{max}"
        );
    }

    /// The hot destination is seed-dependent (rank permutation works).
    #[test]
    fn hot_node_varies_with_seed() {
        let hot = |seed: u64| {
            let g = gen(40, seed);
            let mut st = g.stream(0);
            let mut counts = vec![0u64; 40];
            for _ in 0..5000 {
                counts[st.next_packet().1 as usize] += 1;
            }
            (0..40).max_by_key(|&i| counts[i]).unwrap()
        };
        let hots: std::collections::HashSet<_> = (0..6).map(hot).collect();
        assert!(hots.len() > 1, "hot node pinned across seeds: {hots:?}");
    }

    #[test]
    fn packets_are_well_formed() {
        let g = gen(12, 3);
        let mut st = g.stream(1);
        for _ in 0..5000 {
            let (src, dst, mut h) = st.next_packet();
            assert!(src < 12 && dst < 12);
            assert_ne!(src, dst);
            let mut hops = 0;
            while let Some(s) = h.read_and_shift(4) {
                assert!(s < 4);
                hops += 1;
            }
            assert!(hops <= 4);
        }
    }

    #[test]
    fn fill_burst_matches_next_packet() {
        let g = gen(20, 5);
        let mut a = g.stream(2);
        let mut b = g.stream(2);
        let mut buf = Vec::new();
        a.fill_burst(64, &mut buf);
        for got in &buf {
            assert_eq!(*got, b.next_packet());
        }
    }
}
