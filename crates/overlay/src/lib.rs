//! # splice-overlay
//!
//! Path splicing applied to overlay routing (§5 "other applications").
//!
//! RON-style overlays probe pairwise paths and route over a *single*
//! metric (latency, or loss). The paper suggests splicing can "combine
//! overlay networks that use independent metrics (e.g., splicing RON with
//! SOSR)": each metric induces its own routing trees over the overlay
//! mesh — a slice — and the forwarding bits switch among them, improving
//! fault tolerance over any single-metric overlay.
//!
//! The pieces:
//!
//! * [`overlay::Overlay`] — a set of member nodes of an underlay
//!   topology, meshed by overlay links that each ride the underlay's
//!   shortest path; every overlay link knows its latency, loss rate, and
//!   hop count, and which underlay links it depends on.
//! * [`overlay::Metric`] — the per-metric weight vectors (latency / loss
//!   / hops) that become slices via
//!   [`Splicing::from_weight_vectors`](splice_core::slices::Splicing::from_weight_vectors).
//! * [`overlay::OverlaySplicing`] — the spliced overlay plus the
//!   underlay-failure mapping: an overlay link is down iff any underlay
//!   link on its path is down, so one fiber cut can take several overlay
//!   links at once (the correlated-failure pattern single-metric
//!   overlays struggle with).

pub mod overlay;

pub use overlay::{Metric, Overlay, OverlaySplicing};
