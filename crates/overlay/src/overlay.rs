//! Overlay networks over an underlay topology, and their spliced routing.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use splice_core::slices::Splicing;
use splice_graph::{dijkstra, EdgeId, EdgeMask, Graph, GraphBuilder, NodeId};

/// A routing metric an overlay instance can optimize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Minimize end-to-end propagation latency (RON's latency mode).
    Latency,
    /// Maximize delivery probability (RON's loss mode): weights are
    /// `-ln(1 - loss)`, so shortest path = highest success product.
    Loss,
    /// Minimize overlay hop count (SOSR-style indirection economy).
    Hops,
}

/// One overlay link: two member indices, riding an underlay path.
#[derive(Clone, Debug)]
pub struct OverlayLink {
    /// Endpoint indices into [`Overlay::members`].
    pub a: usize,
    /// Second endpoint index.
    pub b: usize,
    /// Underlay links this overlay link traverses.
    pub underlay_path: Vec<EdgeId>,
    /// End-to-end latency (ms) over the underlay path.
    pub latency_ms: f64,
    /// End-to-end loss rate over the underlay path.
    pub loss: f64,
}

/// An overlay: members of an underlay graph plus a link mesh.
#[derive(Clone, Debug)]
pub struct Overlay {
    /// Underlay node ids of the overlay members.
    pub members: Vec<NodeId>,
    /// Overlay links (graph edge ids align with this vector).
    pub links: Vec<OverlayLink>,
}

impl Overlay {
    /// Build an overlay over `members`, meshing each member with its
    /// `degree` nearest (by latency) peers plus `random_extra` random
    /// peers (the RON recipe: mostly-local mesh with a few long chords).
    /// Overlay links ride the underlay's latency-shortest paths;
    /// per-underlay-link loss rates compose multiplicatively.
    pub fn build(
        underlay: &Graph,
        latencies: &[f64],
        loss_rates: &[f64],
        members: Vec<NodeId>,
        degree: usize,
        random_extra: usize,
        seed: u64,
    ) -> Overlay {
        assert!(members.len() >= 2, "an overlay needs at least two members");
        assert_eq!(latencies.len(), underlay.edge_count());
        assert_eq!(loss_rates.len(), underlay.edge_count());
        let mut rng = StdRng::seed_from_u64(seed);
        let m = members.len();

        // Underlay latency-shortest paths between all member pairs.
        type MemberPath = Option<(Vec<EdgeId>, f64)>;
        let mut paths: Vec<Vec<MemberPath>> = vec![vec![None; m]; m];
        for (ti, &t) in members.iter().enumerate() {
            let spt = dijkstra(underlay, t, latencies);
            for (si, &s) in members.iter().enumerate() {
                if si == ti {
                    continue;
                }
                if let Some(p) = spt.path_from(s) {
                    let lat = p.length(latencies);
                    paths[si][ti] = Some((p.edges, lat));
                }
            }
        }

        // Choose neighbors: nearest by latency + random extras.
        let mut chosen: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        for (si, row) in paths.iter().enumerate() {
            let mut candidates: Vec<(usize, f64)> = row
                .iter()
                .enumerate()
                .filter(|&(ti, _)| ti != si)
                .filter_map(|(ti, p)| p.as_ref().map(|&(_, lat)| (ti, lat)))
                .collect();
            candidates.sort_by(|x, y| x.1.partial_cmp(&y.1).expect("no NaN"));
            for &(ti, _) in candidates.iter().take(degree) {
                chosen.insert((si.min(ti), si.max(ti)));
            }
            let mut rest: Vec<usize> = candidates.iter().skip(degree).map(|&(ti, _)| ti).collect();
            rest.shuffle(&mut rng);
            for &ti in rest.iter().take(random_extra) {
                chosen.insert((si.min(ti), si.max(ti)));
            }
        }

        let links = chosen
            .into_iter()
            .filter_map(|(a, b)| {
                let (edges, latency_ms) = paths[a][b].clone()?;
                let success: f64 = edges.iter().map(|e| 1.0 - loss_rates[e.index()]).product();
                Some(OverlayLink {
                    a,
                    b,
                    underlay_path: edges,
                    latency_ms,
                    loss: 1.0 - success,
                })
            })
            .collect();
        Overlay { members, links }
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The overlay as an algorithmic graph (unit base weights; metrics
    /// supply the real weights per slice).
    pub fn graph(&self) -> Graph {
        let mut b = GraphBuilder::new().with_nodes(self.members.len());
        for l in &self.links {
            b.add_edge(NodeId(l.a as u32), NodeId(l.b as u32), 1.0);
        }
        b.build()
    }

    /// The weight vector a metric induces over the overlay links.
    pub fn metric_weights(&self, metric: Metric) -> Vec<f64> {
        self.links
            .iter()
            .map(|l| match metric {
                Metric::Latency => l.latency_ms.max(1e-6),
                // -ln(success): additive over a path = -ln of the path's
                // delivery probability; floored to stay a valid weight.
                Metric::Loss => (-(1.0 - l.loss).ln()).max(1e-6),
                Metric::Hops => 1.0,
            })
            .collect()
    }

    /// Map an underlay failure mask to the overlay: an overlay link is
    /// down iff any underlay link on its path is down.
    pub fn project_failures(&self, underlay_mask: &EdgeMask) -> EdgeMask {
        let mut mask = EdgeMask::all_up(self.links.len());
        for (i, l) in self.links.iter().enumerate() {
            if l.underlay_path.iter().any(|&e| underlay_mask.is_failed(e)) {
                mask.fail(EdgeId(i as u32));
            }
        }
        mask
    }
}

/// A spliced overlay: one slice per metric over the overlay graph.
pub struct OverlaySplicing {
    /// The overlay being routed.
    pub overlay: Overlay,
    /// Overlay graph (edge ids align with `overlay.links`).
    pub graph: Graph,
    /// The spliced deployment (slice i = `metrics[i]`).
    pub splicing: Splicing,
    /// Metric order of the slices.
    pub metrics: Vec<Metric>,
}

impl OverlaySplicing {
    /// Build slices for the given metrics.
    pub fn build(overlay: Overlay, metrics: Vec<Metric>) -> OverlaySplicing {
        assert!(!metrics.is_empty());
        let graph = overlay.graph();
        let weights = metrics.iter().map(|&m| overlay.metric_weights(m)).collect();
        let splicing = Splicing::from_weight_vectors(&graph, weights);
        OverlaySplicing {
            overlay,
            graph,
            splicing,
            metrics,
        }
    }

    /// Disconnected ordered member pairs under an *underlay* failure
    /// mask, routing with the first `k` metric slices (directed splicing
    /// semantics — what overlay forwarding can actually do).
    pub fn disconnected_pairs(&self, k: usize, underlay_mask: &EdgeMask) -> usize {
        let overlay_mask = self.overlay.project_failures(underlay_mask);
        self.splicing.disconnected_pairs(k, &overlay_mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::sprint::sprint;

    fn setup() -> (Graph, Vec<f64>, Vec<f64>, Vec<NodeId>) {
        let topo = sprint();
        let g = topo.graph();
        let lat = topo.latencies();
        // Loss rates: long links lossier (0.1% per 10 ms), capped at 5%.
        let loss: Vec<f64> = lat.iter().map(|l| (l * 0.0001).min(0.05)).collect();
        // Members: every 4th PoP.
        let members: Vec<NodeId> = g.nodes().step_by(4).collect();
        (g, lat, loss, members)
    }

    fn overlay() -> (Graph, Overlay) {
        let (g, lat, loss, members) = setup();
        let ov = Overlay::build(&g, &lat, &loss, members, 3, 1, 7);
        (g, ov)
    }

    #[test]
    fn mesh_shape() {
        let (_, ov) = overlay();
        assert_eq!(ov.member_count(), 13);
        let og = ov.graph();
        assert_eq!(og.node_count(), 13);
        // Mostly-local mesh: every member got >= its 3 nearest links.
        assert!(og.min_degree() >= 3);
        // Connected.
        let up = EdgeMask::all_up(og.edge_count());
        assert!(splice_graph::traversal::is_connected(&og, &up));
    }

    #[test]
    fn link_properties_compose_from_underlay() {
        let (_, ov) = overlay();
        for l in &ov.links {
            assert!(!l.underlay_path.is_empty());
            assert!(l.latency_ms > 0.0);
            assert!((0.0..1.0).contains(&l.loss));
        }
    }

    #[test]
    fn metrics_give_distinct_weights() {
        let (_, ov) = overlay();
        let lat = ov.metric_weights(Metric::Latency);
        let loss = ov.metric_weights(Metric::Loss);
        let hops = ov.metric_weights(Metric::Hops);
        assert!(lat.iter().all(|&w| w > 0.0));
        assert!(loss.iter().all(|&w| w > 0.0));
        assert!(hops.iter().all(|&w| w == 1.0));
        assert_ne!(lat, hops);
    }

    #[test]
    fn failure_projection() {
        let (g, ov) = overlay();
        // Fail the underlay links of overlay link 0: it must go down.
        let mut under = EdgeMask::all_up(g.edge_count());
        under.fail(ov.links[0].underlay_path[0]);
        let over = ov.project_failures(&under);
        assert!(over.is_failed(EdgeId(0)));
        // One underlay failure can down several overlay links (shared risk).
        let downed = over.failed_count();
        assert!(downed >= 1);
    }

    #[test]
    fn spliced_metrics_survive_more_failures_than_any_single() {
        let (g, ov) = overlay();
        let os = OverlaySplicing::build(ov, vec![Metric::Latency, Metric::Loss, Metric::Hops]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut single = 0usize;
        let mut spliced = 0usize;
        for _ in 0..60 {
            let mut under = EdgeMask::all_up(g.edge_count());
            for e in g.edge_ids() {
                if rand::Rng::gen_bool(&mut rng, 0.06) {
                    under.fail(e);
                }
            }
            single += os.disconnected_pairs(1, &under);
            spliced += os.disconnected_pairs(3, &under);
        }
        assert!(
            spliced <= single,
            "splicing metrics must not hurt: {spliced} vs {single}"
        );
        assert!(
            spliced < single,
            "with 60 storms, metric splicing should win at least once"
        );
    }

    #[test]
    fn no_failures_everyone_connected() {
        let (g, ov) = overlay();
        let os = OverlaySplicing::build(ov, vec![Metric::Latency, Metric::Loss]);
        let up = EdgeMask::all_up(g.edge_count());
        assert_eq!(os.disconnected_pairs(1, &up), 0);
        assert_eq!(os.disconnected_pairs(2, &up), 0);
    }

    #[test]
    fn deterministic_build() {
        let (g, lat, loss, members) = setup();
        let a = Overlay::build(&g, &lat, &loss, members.clone(), 3, 1, 7);
        let b = Overlay::build(&g, &lat, &loss, members, 3, 1, 7);
        assert_eq!(a.links.len(), b.links.len());
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn tiny_overlay_rejected() {
        let (g, lat, loss, _) = setup();
        Overlay::build(&g, &lat, &loss, vec![NodeId(0)], 2, 0, 1);
    }
}
