//! Name → [`Topology`] resolution, shared by every binary.
//!
//! Historically each driver matched `sprint|geant|abilene` by hand and
//! called `std::process::exit` on anything else, so the random families in
//! [`generators`] (and the testkit's prefix-stable `rand-N-M-S` scenario
//! grammar) were unreachable from the command line. This module is the one
//! resolver: named ISP maps plus seeded generator specs, with a typed
//! error surfaced only at each binary's `main`.
//!
//! Accepted names:
//!
//! | spec            | topology                                              |
//! |-----------------|-------------------------------------------------------|
//! | `abilene`       | 11-node Abilene backbone                              |
//! | `geant`         | 23-node GEANT backbone                                |
//! | `sprint`        | 52-node Rocketfuel Sprint backbone                    |
//! | `rand-N-M-S`    | ring of N + M random chords, seed S (testkit grammar) |
//! | `er-N-D-S`      | connected G(n, p) with mean degree D, seed S          |
//! | `ba-N-M-S`      | Barabási–Albert, M edges per new node, seed S         |
//! | `waxman-N-S`    | Waxman geometric graph (α = 0.9, β = 0.3), seed S     |
//! | `grid-R-C`      | R × C grid                                            |
//! | `ring-N`        | N-cycle                                               |
//! | `complete-N`    | K_N                                                   |
//!
//! Generated topologies are wrapped via [`Topology::from_graph`] and keep
//! their full spec as the topology name, so artifact files stay
//! self-describing (`fig3_reliability_rand-24-40-7_union.csv`).

use crate::model::Topology;
use crate::{abilene, geant, generators, sprint};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The built-in ISP maps, in the order help text lists them.
pub const NAMED_TOPOLOGIES: &[&str] = &["sprint", "geant", "abilene"];

/// Why a topology name failed to resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The name is neither a built-in map nor a known generator family.
    Unknown {
        /// The offending name.
        name: String,
    },
    /// A generator spec with a recognized family but malformed or
    /// out-of-range arguments.
    BadSpec {
        /// The offending spec.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The generator family cannot produce a connected graph with these
    /// parameters (only `er-…`; 1000 draws all came out disconnected).
    Disconnected {
        /// The offending spec.
        spec: String,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Unknown { name } => write!(
                f,
                "unknown topology {name:?}; expected sprint|geant|abilene or a generator \
                 spec (rand-N-M-S, er-N-D-S, ba-N-M-S, waxman-N-S, grid-R-C, ring-N, complete-N)"
            ),
            TopologyError::BadSpec { spec, reason } => {
                write!(f, "bad topology spec {spec:?}: {reason}")
            }
            TopologyError::Disconnected { spec } => write!(
                f,
                "topology spec {spec:?} kept producing disconnected graphs; raise the degree"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Resolve a topology name or generator spec.
pub fn resolve(name: &str) -> Result<Topology, TopologyError> {
    match name {
        "abilene" => Ok(abilene::abilene()),
        "geant" => Ok(geant::geant()),
        "sprint" => Ok(sprint::sprint()),
        _ => resolve_generated(name),
    }
}

fn resolve_generated(spec: &str) -> Result<Topology, TopologyError> {
    let Some((family, rest)) = spec.split_once('-') else {
        return Err(TopologyError::Unknown {
            name: spec.to_string(),
        });
    };
    let args: Vec<&str> = rest.split('-').collect();
    let bad = |reason: String| TopologyError::BadSpec {
        spec: spec.to_string(),
        reason,
    };
    let arity = |want: usize, shape: &str| {
        if args.len() == want {
            Ok(())
        } else {
            Err(bad(format!("want {shape}")))
        }
    };
    let num = |field: &str, what: &str| {
        field
            .parse::<u64>()
            .map_err(|_| bad(format!("bad {what} {field:?}")))
    };
    let graph = match family {
        "rand" => {
            arity(3, "rand-N-M-S")?;
            let n = num(args[0], "node count")?;
            let extra = num(args[1], "chord count")?;
            let seed = num(args[2], "seed")?;
            if n < 3 {
                return Err(bad(format!("need >= 3 nodes, got {n}")));
            }
            generators::ring_with_chords(n as u32, extra as u32, seed)
        }
        "er" => {
            arity(3, "er-N-D-S")?;
            let n = num(args[0], "node count")? as usize;
            let degree = num(args[1], "mean degree")?;
            let seed = num(args[2], "seed")?;
            if n < 2 {
                return Err(bad(format!("need >= 2 nodes, got {n}")));
            }
            let p = degree as f64 / (n - 1) as f64;
            generators::try_connected_erdos_renyi(n, p, seed).ok_or(
                TopologyError::Disconnected {
                    spec: spec.to_string(),
                },
            )?
        }
        "ba" => {
            arity(3, "ba-N-M-S")?;
            let n = num(args[0], "node count")? as usize;
            let m = num(args[1], "attachment count")? as usize;
            let seed = num(args[2], "seed")?;
            if m == 0 {
                return Err(bad("attachment count must be >= 1".to_string()));
            }
            if n <= m {
                return Err(bad(format!("need more than {m} nodes, got {n}")));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            generators::barabasi_albert(n, m, &mut rng)
        }
        "waxman" => {
            arity(2, "waxman-N-S")?;
            let n = num(args[0], "node count")? as usize;
            let seed = num(args[1], "seed")?;
            if n < 2 {
                return Err(bad(format!("need >= 2 nodes, got {n}")));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            generators::waxman(n, 0.9, 0.3, &mut rng)
        }
        "grid" => {
            arity(2, "grid-R-C")?;
            let rows = num(args[0], "row count")? as usize;
            let cols = num(args[1], "column count")? as usize;
            if rows * cols < 2 {
                return Err(bad(format!("need >= 2 nodes, got {rows}x{cols}")));
            }
            generators::grid(rows, cols)
        }
        "ring" => {
            arity(1, "ring-N")?;
            let n = num(args[0], "node count")? as usize;
            if n < 3 {
                return Err(bad(format!("need >= 3 nodes, got {n}")));
            }
            generators::ring(n)
        }
        "complete" => {
            arity(1, "complete-N")?;
            let n = num(args[0], "node count")? as usize;
            if n < 2 {
                return Err(bad(format!("need >= 2 nodes, got {n}")));
            }
            generators::complete(n)
        }
        _ => {
            return Err(TopologyError::Unknown {
                name: spec.to_string(),
            })
        }
    };
    Ok(Topology::from_graph(spec, &graph))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_topologies_resolve() {
        for name in NAMED_TOPOLOGIES {
            let t = resolve(name).unwrap();
            assert_eq!(&t.name, name);
            assert!(t.node_count() > 0);
        }
    }

    #[test]
    fn rand_spec_matches_generator() {
        let t = resolve("rand-8-12-99").unwrap();
        assert_eq!(t.name, "rand-8-12-99");
        let g = t.graph();
        let reference = generators::ring_with_chords(8, 12, 99);
        assert_eq!(g.node_count(), reference.node_count());
        assert_eq!(g.edge_count(), reference.edge_count());
        for (a, b) in g.edges().iter().zip(reference.edges()) {
            assert_eq!((a.u, a.v, a.weight), (b.u, b.v, b.weight));
        }
    }

    #[test]
    fn generator_specs_resolve() {
        for spec in [
            "er-16-4-7",
            "ba-20-2-3",
            "waxman-24-5",
            "grid-3-4",
            "ring-6",
            "complete-5",
        ] {
            let t = resolve(spec).unwrap();
            assert_eq!(t.name, spec);
            assert!(t.node_count() >= 2, "{spec}");
            assert!(t.link_count() >= 1, "{spec}");
        }
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        assert!(matches!(
            resolve("nope"),
            Err(TopologyError::Unknown { .. })
        ));
        assert!(matches!(
            resolve("zzz-1-2-3"),
            Err(TopologyError::Unknown { .. })
        ));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for spec in [
            "rand-3-4",
            "rand-2-4-1",
            "rand-x-4-1",
            "er-1-2-3",
            "ba-2-2-1",
            "ba-5-0-1",
            "grid-1-1",
            "ring-2",
            "complete-1",
            "waxman-1-1",
        ] {
            assert!(
                matches!(resolve(spec), Err(TopologyError::BadSpec { .. })),
                "accepted {spec:?}"
            );
        }
    }

    #[test]
    fn errors_render_usable_messages() {
        let e = resolve("nope").unwrap_err().to_string();
        assert!(e.contains("sprint|geant|abilene"), "{e}");
        let e = resolve("rand-2-0-0").unwrap_err().to_string();
        assert!(e.contains("rand-2-0-0"), "{e}");
    }
}
