//! The Sprint backbone at PoP level, 52 nodes / 84 links.
//!
//! The paper uses "the Sprint backbone network topology inferred from
//! Rocketfuel, which has 52 nodes and 84 links" (§4.1). Rocketfuel's own
//! Sprint (AS1239) map is itself a measurement-based inference; this
//! embedded reconstruction preserves what the evaluation depends on:
//!
//! * exactly 52 PoPs and 84 undirected links,
//! * a handful of high-degree hubs (Chicago, Fort Worth, New York,
//!   Relay/DC, Atlanta, San Jose) over a 2-connected continental mesh with
//!   a few stub tails — the degree mix that makes degree-based
//!   perturbation meaningful,
//! * distance-derived weights (Rocketfuel inferred latency-proportional
//!   weights), spanning metro links (weight ≈ 1) to trans-Pacific spans.
//!
//! A real Rocketfuel `weights` file can be loaded with
//! [`crate::parse::parse_rocketfuel_weights`] and used everywhere this
//! topology is.

use crate::model::Topology;

/// Build the embedded Sprint PoP-level topology (52 nodes, 84 links).
pub fn sprint() -> Topology {
    let nodes: &[(&str, f64, f64)] = &[
        ("Seattle", 47.61, -122.33),
        ("Tacoma", 47.25, -122.44),
        ("Portland", 45.52, -122.68),
        ("Sacramento", 38.58, -121.49),
        ("Stockton", 37.96, -121.29),
        ("San Francisco", 37.77, -122.42),
        ("San Jose", 37.34, -121.89),
        ("Anaheim", 33.84, -117.91),
        ("Los Angeles", 34.05, -118.24),
        ("San Diego", 32.72, -117.16),
        ("Pearl City", 21.40, -157.97),
        ("Phoenix", 33.45, -112.07),
        ("Salt Lake City", 40.76, -111.89),
        ("Cheyenne", 41.14, -104.82),
        ("Denver", 39.74, -104.99),
        ("Albuquerque", 35.08, -106.65),
        ("El Paso", 31.76, -106.49),
        ("Fort Worth", 32.76, -97.33),
        ("Dallas", 32.78, -96.80),
        ("Houston", 29.76, -95.37),
        ("San Antonio", 29.42, -98.49),
        ("New Orleans", 29.95, -90.07),
        ("Kansas City", 39.10, -94.58),
        ("St. Louis", 38.63, -90.20),
        ("Chicago", 41.88, -87.63),
        ("Milwaukee", 43.04, -87.91),
        ("Minneapolis", 44.98, -93.27),
        ("Detroit", 42.33, -83.05),
        ("Cleveland", 41.50, -81.69),
        ("Columbus", 39.96, -83.00),
        ("Roachdale", 39.85, -86.80), // Sprint's Indiana PoP
        ("Cincinnati", 39.10, -84.51),
        ("Nashville", 36.16, -86.78),
        ("Memphis", 35.15, -90.05),
        ("Atlanta", 33.75, -84.39),
        ("Orlando", 28.54, -81.38),
        ("Miami", 25.76, -80.19),
        ("Tampa", 27.95, -82.46),
        ("Raleigh", 35.78, -78.64),
        ("Charlotte", 35.23, -80.84),
        ("Relay", 39.23, -76.71),      // Sprint's Washington-DC area PoP
        ("Pennsauken", 39.96, -75.06), // Philadelphia-area PoP
        ("New York", 40.71, -74.01),
        ("Boston", 42.36, -71.06),
        ("Springfield", 42.10, -72.59),
        ("Buffalo", 42.89, -78.88),
        ("Pittsburgh", 40.44, -80.00),
        ("London", 51.51, -0.13),
        ("Paris", 48.86, 2.35),
        ("Brussels", 50.85, 4.35),
        ("Copenhagen", 55.68, 12.57),
        ("Tokyo", 35.68, 139.69),
    ];
    let links: &[(&str, &str)] = &[
        // Pacific Northwest
        ("Seattle", "Tacoma"),
        ("Seattle", "Portland"),
        ("Tacoma", "Portland"),
        // California
        ("Portland", "Sacramento"),
        ("Sacramento", "Stockton"),
        ("Sacramento", "San Francisco"),
        ("Stockton", "San Jose"),
        ("San Francisco", "San Jose"),
        ("San Jose", "Los Angeles"),
        ("Los Angeles", "Anaheim"),
        ("Anaheim", "San Diego"),
        ("San Diego", "Phoenix"),
        ("Anaheim", "Phoenix"),
        // Hawaii (dual-homed to California)
        ("Pearl City", "San Jose"),
        ("Pearl City", "Los Angeles"),
        // Mountain
        ("Seattle", "Salt Lake City"),
        ("Salt Lake City", "Cheyenne"),
        ("Salt Lake City", "Denver"),
        ("Cheyenne", "Denver"),
        ("Denver", "Kansas City"),
        ("Cheyenne", "Chicago"),
        ("Sacramento", "Salt Lake City"),
        // Southwest
        ("Phoenix", "Albuquerque"),
        ("Albuquerque", "El Paso"),
        ("Albuquerque", "Denver"),
        ("El Paso", "Fort Worth"),
        ("Fort Worth", "Dallas"),
        ("Dallas", "Houston"),
        ("Houston", "San Antonio"),
        ("San Antonio", "El Paso"),
        ("Houston", "New Orleans"),
        ("New Orleans", "Atlanta"),
        // Plains / Midwest
        ("Fort Worth", "Kansas City"),
        ("Kansas City", "St. Louis"),
        ("St. Louis", "Chicago"),
        ("Chicago", "Milwaukee"),
        ("Milwaukee", "Minneapolis"),
        ("Minneapolis", "Chicago"),
        ("Chicago", "Detroit"),
        ("Detroit", "Cleveland"),
        ("Cleveland", "Buffalo"),
        ("Buffalo", "New York"),
        ("Cleveland", "Pittsburgh"),
        ("Pittsburgh", "Pennsauken"),
        ("Chicago", "Roachdale"),
        ("Roachdale", "Cincinnati"),
        ("Cincinnati", "Columbus"),
        ("Columbus", "Cleveland"),
        ("Roachdale", "St. Louis"),
        // South
        ("Nashville", "Atlanta"),
        ("Nashville", "Memphis"),
        ("Memphis", "Dallas"),
        ("Nashville", "Cincinnati"),
        ("Atlanta", "Orlando"),
        ("Orlando", "Miami"),
        ("Miami", "Tampa"),
        ("Tampa", "Atlanta"),
        ("Atlanta", "Charlotte"),
        ("Charlotte", "Raleigh"),
        ("Raleigh", "Relay"),
        // East coast
        ("Relay", "Pennsauken"),
        ("Pennsauken", "New York"),
        ("New York", "Boston"),
        ("Boston", "Springfield"),
        ("Springfield", "New York"),
        ("Relay", "Atlanta"),
        // Long-haul express links
        ("New York", "Chicago"),
        ("Relay", "Chicago"),
        ("Fort Worth", "Atlanta"),
        ("Fort Worth", "Anaheim"),
        ("San Jose", "Chicago"),
        ("Seattle", "Chicago"),
        ("Los Angeles", "Fort Worth"),
        ("Denver", "Fort Worth"),
        ("Kansas City", "Chicago"),
        // International
        ("New York", "London"),
        ("Relay", "London"),
        ("London", "Paris"),
        ("Paris", "Brussels"),
        ("London", "Brussels"),
        ("London", "Copenhagen"),
        ("Copenhagen", "Brussels"),
        ("Tokyo", "Seattle"),
        ("Tokyo", "San Jose"),
    ];
    Topology::from_named("sprint", nodes, links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::traversal::is_connected;
    use splice_graph::EdgeMask;

    #[test]
    fn paper_counts() {
        let t = sprint();
        assert_eq!(t.node_count(), 52, "Sprint has 52 nodes");
        assert_eq!(t.link_count(), 84, "Sprint has 84 links");
    }

    #[test]
    fn connected() {
        let t = sprint();
        let g = t.graph();
        assert!(is_connected(&g, &EdgeMask::all_up(g.edge_count())));
    }

    #[test]
    fn chicago_is_the_biggest_hub() {
        let t = sprint();
        let g = t.graph();
        let chi = t.node_by_name("Chicago").unwrap();
        assert!(g.degree(chi) >= 9, "Chicago degree {}", g.degree(chi));
        assert_eq!(g.max_degree(), g.degree(chi));
    }

    #[test]
    fn degree_mix_is_skewed() {
        // A few hubs, many degree-2/3 PoPs — the mix degree-based
        // perturbation exploits.
        let t = sprint();
        let g = t.graph();
        let hubs = g.nodes().filter(|&n| g.degree(n) >= 6).count();
        let small = g.nodes().filter(|&n| g.degree(n) <= 3).count();
        assert!(hubs >= 3, "want >=3 hubs, got {hubs}");
        assert!(small >= 30, "want >=30 small PoPs, got {small}");
    }

    #[test]
    fn average_degree_matches_paper_scale() {
        let t = sprint();
        let avg = 2.0 * t.link_count() as f64 / t.node_count() as f64;
        assert!((3.0..3.5).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn every_pop_is_two_connected() {
        let t = sprint();
        let g = t.graph();
        for n in g.nodes() {
            assert!(
                g.degree(n) >= 2,
                "{} has degree {}",
                t.node_name(n),
                g.degree(n)
            );
        }
    }

    #[test]
    fn weight_spread_spans_metro_to_transpacific() {
        let t = sprint();
        let ws: Vec<f64> = t.links.iter().map(|l| l.weight).collect();
        let min = ws.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ws.iter().cloned().fold(0.0, f64::max);
        assert_eq!(min, 1.0, "metro links hit the floor");
        assert!(max > 50.0, "trans-oceanic links are heavy, max {max}");
    }

    #[test]
    fn no_duplicate_links() {
        let t = sprint();
        let mut seen = std::collections::HashSet::new();
        for l in &t.links {
            let key = (l.a.min(l.b), l.a.max(l.b));
            assert!(seen.insert(key), "duplicate link {key:?}");
        }
    }

    #[test]
    fn no_bridges() {
        // Every link must sit on a cycle: no single failure may partition
        // the topology (an MRC validity requirement, and true of the real
        // backbones these reconstruct).
        let t = sprint();
        let g = t.graph();
        for e in g.edge_ids() {
            let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
            assert!(
                is_connected(&g, &mask),
                "{} - {} is a bridge",
                t.node_name(g.edge(e).u),
                t.node_name(g.edge(e).v)
            );
        }
    }
}
