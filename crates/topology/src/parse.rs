//! Topology file formats: a plain edge list and the Rocketfuel
//! `weights`-style format, with writers for both.
//!
//! The edge-list format, one link per line:
//!
//! ```text
//! # comment
//! <node-a> <node-b> <weight> [latency_ms]
//! ```
//!
//! The Rocketfuel format, as published with the ISP maps the paper uses:
//!
//! ```text
//! <node-a> <node-b> <weight>
//! ```
//!
//! where node names may contain commas (city, state) but not whitespace in
//! this simplified variant. Nodes are created on first mention, in order.

use crate::model::{LinkSpec, NodeSpec, Topology};
use std::collections::HashMap;
use std::fmt;

/// Error from topology parsing, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse the edge-list format. Lines are `a b weight [latency]`;
/// blank lines and `#` comments are skipped. Latency defaults to the
/// weight when omitted.
pub fn parse_edge_list(name: &str, text: &str) -> Result<Topology, ParseError> {
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut nodes = Vec::new();
    let mut links = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() < 3 || parts.len() > 4 {
            return Err(ParseError {
                line: lineno + 1,
                message: format!("expected `a b weight [latency]`, got {line:?}"),
            });
        }
        let mut node_id = |name: &str, nodes: &mut Vec<NodeSpec>| -> usize {
            *index.entry(name.to_string()).or_insert_with(|| {
                nodes.push(NodeSpec {
                    name: name.to_string(),
                    lat: 0.0,
                    lon: 0.0,
                });
                nodes.len() - 1
            })
        };
        let a = node_id(parts[0], &mut nodes);
        let b = node_id(parts[1], &mut nodes);
        if a == b {
            return Err(ParseError {
                line: lineno + 1,
                message: format!("self-link on {:?}", parts[0]),
            });
        }
        let weight: f64 = parts[2].parse().map_err(|e| ParseError {
            line: lineno + 1,
            message: format!("bad weight {:?}: {e}", parts[2]),
        })?;
        if !(weight.is_finite() && weight > 0.0) {
            return Err(ParseError {
                line: lineno + 1,
                message: format!("weight must be positive and finite, got {weight}"),
            });
        }
        let latency_ms = if parts.len() == 4 {
            parts[3].parse().map_err(|e| ParseError {
                line: lineno + 1,
                message: format!("bad latency {:?}: {e}", parts[3]),
            })?
        } else {
            weight
        };
        links.push(LinkSpec {
            a,
            b,
            weight,
            latency_ms,
        });
    }
    Ok(Topology {
        name: name.to_string(),
        nodes,
        links,
    })
}

/// Serialize to the edge-list format (with latency column). Names with
/// internal whitespace are underscore-escaped, as in Rocketfuel files.
pub fn write_edge_list(t: &Topology) -> String {
    let mut out = format!(
        "# topology: {} ({} nodes, {} links)\n",
        t.name,
        t.node_count(),
        t.link_count()
    );
    for l in &t.links {
        out.push_str(&format!(
            "{} {} {} {}\n",
            t.nodes[l.a].name.replace(' ', "_"),
            t.nodes[l.b].name.replace(' ', "_"),
            l.weight,
            l.latency_ms
        ));
    }
    out
}

/// Parse the Rocketfuel-style `weights` format: `a b weight` per line.
/// This is what the published Sprint/AS1239 PoP-level map ships as.
pub fn parse_rocketfuel_weights(name: &str, text: &str) -> Result<Topology, ParseError> {
    // Same grammar as the 3-column edge list.
    parse_edge_list(name, text)
}

/// Serialize to Rocketfuel `weights` format (three columns, names with
/// internal spaces replaced by underscores as Rocketfuel does).
pub fn write_rocketfuel_weights(t: &Topology) -> String {
    let mut out = String::new();
    for l in &t.links {
        out.push_str(&format!(
            "{} {} {}\n",
            t.nodes[l.a].name.replace(' ', "_"),
            t.nodes[l.b].name.replace(' ', "_"),
            l.weight
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sprint::sprint;

    #[test]
    fn parse_simple_edge_list() {
        let t = parse_edge_list("t", "# comment\n\na b 2.5\nb c 3 7.5\n").unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.links[0].weight, 2.5);
        assert_eq!(t.links[0].latency_ms, 2.5); // defaulted
        assert_eq!(t.links[1].latency_ms, 7.5);
        assert_eq!(t.nodes[0].name, "a");
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_edge_list("t", "a b 1.0\na b\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(parse_edge_list("t", "a b zero").is_err());
        assert!(parse_edge_list("t", "a b -1").is_err());
        assert!(parse_edge_list("t", "a b 0").is_err());
        let err = parse_edge_list("t", "a a 1").unwrap_err();
        assert!(err.message.contains("self-link"));
    }

    #[test]
    fn roundtrip_edge_list() {
        let t = sprint();
        let text = write_edge_list(&t);
        let t2 = parse_edge_list("sprint", &text).unwrap();
        assert_eq!(t2.node_count(), t.node_count());
        assert_eq!(t2.link_count(), t.link_count());
        // Weights survive the roundtrip.
        for (a, b) in t.links.iter().zip(&t2.links) {
            assert!((a.weight - b.weight).abs() < 1e-9);
            assert!((a.latency_ms - b.latency_ms).abs() < 1e-9);
        }
        // And the graphs are isomorphic under the identity (same insertion order).
        let (g1, g2) = (t.graph(), t2.graph());
        assert_eq!(g1.base_weights(), g2.base_weights());
    }

    #[test]
    fn rocketfuel_roundtrip() {
        let t = sprint();
        let text = write_rocketfuel_weights(&t);
        let t2 = parse_rocketfuel_weights("sprint", &text).unwrap();
        assert_eq!(t2.node_count(), 52);
        assert_eq!(t2.link_count(), 84);
        // Underscored names parse back as single tokens.
        assert!(t2.nodes.iter().any(|n| n.name == "San_Jose"));
    }

    #[test]
    fn empty_input_gives_empty_topology() {
        let t = parse_edge_list("empty", "# nothing\n").unwrap();
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.link_count(), 0);
    }

    #[test]
    fn display_impl() {
        let err = parse_edge_list("t", "x y nope").unwrap_err();
        let shown = format!("{err}");
        assert!(shown.contains("line 1"));
    }
}
