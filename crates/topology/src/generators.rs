//! Random topology generators for the scaling experiments.
//!
//! Theorem A.1 says the number of slices needed for near-optimal
//! connectivity grows like `log n`; validating that empirically requires
//! graph *families* of growing size. These are the standard ones:
//!
//! * [`erdos_renyi`] — G(n, p) with i.i.d. edges,
//! * [`barabasi_albert`] — preferential attachment, giving the heavy-tailed
//!   degree mix real ISP maps show (and the paper's degree-based
//!   perturbation targets),
//! * [`waxman`] — random geometric graph with distance-decaying link
//!   probability, the classic synthetic-ISP model,
//! * [`grid`], [`ring`], [`complete`] — structured baselines.
//!
//! All generators take an explicit RNG so experiments are reproducible
//! from a seed, and all weights default to 1.0 (unit-weight routing)
//! except Waxman, which uses euclidean-distance weights.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_graph::graph::from_edges;
use splice_graph::{Graph, GraphBuilder, NodeId};

/// G(n, p): each of the n(n-1)/2 possible edges appears independently
/// with probability `p`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::new().with_nodes(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_edge(NodeId(u), NodeId(v), 1.0);
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m + 1` nodes, then each new node attaches `m` edges to existing nodes
/// with probability proportional to their degree.
///
/// # Panics
/// Panics if `n <= m` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut StdRng) -> Graph {
    assert!(m >= 1, "attachment count must be >= 1");
    assert!(n > m, "need more nodes than the seed clique");
    let mut b = GraphBuilder::new().with_nodes(n);
    // Repeated-node list: picking uniformly from it is degree-proportional.
    let mut chances: Vec<u32> = Vec::new();
    let seed = m + 1;
    for u in 0..seed as u32 {
        for v in (u + 1)..seed as u32 {
            b.add_edge(NodeId(u), NodeId(v), 1.0);
            chances.push(u);
            chances.push(v);
        }
    }
    for new in seed as u32..n as u32 {
        let mut targets = std::collections::HashSet::new();
        while targets.len() < m {
            let pick = chances[rng.gen_range(0..chances.len())];
            targets.insert(pick);
        }
        for &t in &targets {
            b.add_edge(NodeId(new), NodeId(t), 1.0);
            chances.push(new);
            chances.push(t);
        }
    }
    b.build()
}

/// Waxman random geometric graph on the unit square: nodes get uniform
/// positions; an edge (u, v) appears with probability
/// `alpha * exp(-d(u,v) / (beta * L))` where `L = sqrt(2)` is the maximum
/// distance. Weights are euclidean distances scaled to a minimum of 1.
pub fn waxman(n: usize, alpha: f64, beta: f64, rng: &mut StdRng) -> Graph {
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let l = std::f64::consts::SQRT_2;
    let mut b = GraphBuilder::new().with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let d = ((pos[u].0 - pos[v].0).powi(2) + (pos[u].1 - pos[v].1).powi(2)).sqrt();
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_edge(NodeId(u as u32), NodeId(v as u32), (d * 10.0).max(1.0));
            }
        }
    }
    b.build()
}

/// `rows × cols` grid with unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new().with_nodes(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), 1.0);
            }
        }
    }
    b.build()
}

/// Cycle on `n >= 3` nodes with unit weights.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = GraphBuilder::new().with_nodes(n);
    for i in 0..n as u32 {
        b.add_edge(NodeId(i), NodeId((i + 1) % n as u32), 1.0);
    }
    b.build()
}

/// Complete graph K_n with unit weights.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new().with_nodes(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(NodeId(u), NodeId(v), 1.0);
        }
    }
    b.build()
}

/// Keep regenerating an Erdős–Rényi graph until it is connected (bounded
/// retries), for experiments that require a connected base topology.
pub fn connected_erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    try_connected_erdos_renyi(n, p, seed).unwrap_or_else(|| {
        panic!("could not generate a connected G({n}, {p}) in 1000 tries — p too small")
    })
}

/// Non-panicking [`connected_erdos_renyi`]: `None` when 1000 draws all
/// come out disconnected (`p` too small for `n`).
pub fn try_connected_erdos_renyi(n: usize, p: f64, seed: u64) -> Option<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..1000 {
        let g = erdos_renyi(n, p, &mut rng);
        let mask = splice_graph::EdgeMask::all_up(g.edge_count());
        if splice_graph::traversal::is_connected(&g, &mask) {
            return Some(g);
        }
    }
    None
}

/// Ring backbone `0..n` (unit weights, guaranteeing initial connectivity)
/// plus `extra` random chords — the testkit's `rand-N-M-S` scenario
/// grammar, shared here so the same graphs are reachable from the CLI and
/// the experiment engine via `--topology rand-N-M-S`.
///
/// Chords are drawn one at a time with exactly three RNG draws each, so
/// `extra - 1` yields a strict prefix of the same graph — the property the
/// testkit shrinker's remove-edges pass relies on. Do not change the draw
/// sequence: replay specs recorded anywhere would stop reproducing.
///
/// # Panics
/// Panics if `n < 3` (callers that must not panic check first).
pub fn ring_with_chords(n: u32, extra: u32, seed: u64) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut edges: Vec<(u32, u32, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..extra {
        // Exactly three draws per chord; `v = u + d` with `d in 1..n`
        // can never be a self-loop.
        let u = rng.gen_range(0..n);
        let d = rng.gen_range(1..n);
        let w = rng.gen_range(0.5f64..8.0);
        edges.push((u, (u + d) % n, w));
    }
    from_edges(n as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::traversal::is_connected;
    use splice_graph::EdgeMask;

    #[test]
    fn erdos_renyi_edge_count_scales() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(50, 0.5, &mut rng);
        let expected = 0.5 * 50.0 * 49.0 / 2.0;
        let m = g.edge_count() as f64;
        assert!((m - expected).abs() < expected * 0.25, "m = {m}");
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).edge_count(), 45);
    }

    #[test]
    fn barabasi_albert_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(100, 2, &mut rng);
        // seed clique K3 (3 edges) + 97 nodes * 2 edges.
        assert_eq!(g.edge_count(), 3 + 97 * 2);
        assert!(is_connected(&g, &EdgeMask::all_up(g.edge_count())));
        // Preferential attachment produces a hub much larger than median.
        assert!(g.max_degree() >= 8, "max degree {}", g.max_degree());
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn barabasi_albert_rejects_tiny_n() {
        let mut rng = StdRng::seed_from_u64(4);
        barabasi_albert(2, 2, &mut rng);
    }

    #[test]
    fn waxman_respects_geometry() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = waxman(60, 0.9, 0.3, &mut rng);
        assert!(g.edge_count() > 0);
        for e in g.edges() {
            assert!(e.weight >= 1.0);
        }
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // 3*3 horizontal + 2*4 vertical = 17.
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g, &EdgeMask::all_up(17)));
    }

    #[test]
    fn ring_and_complete() {
        let r = ring(5);
        assert_eq!(r.edge_count(), 5);
        for n in r.nodes() {
            assert_eq!(r.degree(n), 2);
        }
        let k = complete(5);
        assert_eq!(k.edge_count(), 10);
        for n in k.nodes() {
            assert_eq!(k.degree(n), 4);
        }
    }

    #[test]
    fn connected_er_is_connected() {
        let g = connected_erdos_renyi(30, 0.2, 42);
        assert!(is_connected(&g, &EdgeMask::all_up(g.edge_count())));
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let g1 = {
            let mut rng = StdRng::seed_from_u64(9);
            erdos_renyi(20, 0.3, &mut rng)
        };
        let g2 = {
            let mut rng = StdRng::seed_from_u64(9);
            erdos_renyi(20, 0.3, &mut rng)
        };
        assert_eq!(g1.edge_count(), g2.edge_count());
        for (a, b) in g1.edges().iter().zip(g2.edges()) {
            assert_eq!(a.u, b.u);
            assert_eq!(a.v, b.v);
        }
    }
}
