//! Geographic helpers: great-circle distances and latency estimates.
//!
//! Embedded topologies carry PoP coordinates so that link weights and
//! propagation latencies can be derived the way Rocketfuel-era studies
//! did: IGP weights roughly proportional to fiber distance, latency at
//! roughly 2/3 the speed of light in fiber.

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Signal propagation speed in fiber, km per millisecond (≈ 0.67 c).
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// Great-circle (haversine) distance between two (lat, lon) points in
/// degrees, returned in kilometres.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
}

/// One-way propagation latency in milliseconds for a fiber run of
/// `distance_km` (fiber paths are rarely geodesic; a 1.3× path-inflation
/// factor is conventional).
pub fn propagation_latency_ms(distance_km: f64) -> f64 {
    distance_km * 1.3 / FIBER_KM_PER_MS
}

/// A distance-derived IGP weight: proportional to distance with a floor of
/// 1, so short metro links still cost something.
pub fn distance_weight(distance_km: f64) -> f64 {
    (distance_km / 100.0).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_same_point() {
        assert!(haversine_km(48.85, 2.35, 48.85, 2.35) < 1e-9);
    }

    #[test]
    fn paris_london_distance() {
        // ~343 km great-circle.
        let d = haversine_km(48.8566, 2.3522, 51.5074, -0.1278);
        assert!((330.0..360.0).contains(&d), "got {d}");
    }

    #[test]
    fn new_york_london_distance() {
        // ~5570 km great-circle.
        let d = haversine_km(40.7128, -74.0060, 51.5074, -0.1278);
        assert!((5500.0..5650.0).contains(&d), "got {d}");
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let d = haversine_km(0.0, 0.0, 0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0);
    }

    #[test]
    fn latency_scales_with_distance() {
        assert!(propagation_latency_ms(200.0) > 1.0);
        assert!(propagation_latency_ms(0.0) == 0.0);
    }

    #[test]
    fn weight_has_floor() {
        assert_eq!(distance_weight(10.0), 1.0);
        assert!(distance_weight(1000.0) > 9.0);
    }
}
