//! # splice-topology
//!
//! ISP topology models for the path-splicing reproduction.
//!
//! The paper evaluates on two "base" topologies (§4.1):
//!
//! * **GEANT** — the European research backbone, 23 nodes / 37 links,
//!   "typical for a medium-sized ISP" ([`geant::geant`]).
//! * **Sprint** — the Sprint backbone as inferred by Rocketfuel,
//!   52 nodes / 84 links ([`sprint::sprint`]).
//!
//! Both ship embedded here, reconstructed from public maps of the same
//! era (see `DESIGN.md` §3 for the substitution rationale: the evaluation
//! depends on node/link counts, degree mix and weight spread, all of which
//! are preserved; real topology files in Rocketfuel's format can be loaded
//! via [`parse`] instead).
//!
//! Also provided:
//!
//! * [`abilene::abilene`] — the 11-node Abilene backbone, handy for small
//!   worked examples.
//! * [`generators`] — Erdős–Rényi, Barabási–Albert, Waxman, grid, and ring
//!   families, used by the Theorem A.1 scaling experiments.
//! * [`parse`] — a plain edge-list format and a Rocketfuel-style
//!   `weights`-file parser, plus serializers for both.
//! * [`resolve`] — the one name → topology resolver every binary shares
//!   (named maps plus seeded generator specs like `rand-24-40-7`).

pub mod abilene;
pub mod geant;
pub mod generators;
pub mod geo;
pub mod model;
pub mod parse;
pub mod resolve;
pub mod sprint;

pub use model::{LinkSpec, NodeSpec, Topology};
pub use resolve::{resolve, TopologyError};
