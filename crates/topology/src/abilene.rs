//! The Abilene (Internet2) backbone: 11 nodes, 14 links.
//!
//! Not part of the paper's evaluation, but the canonical small research
//! backbone — ideal for worked examples and fast tests where Sprint would
//! be overkill.

use crate::model::Topology;

/// Build the Abilene topology (11 nodes, 14 links).
pub fn abilene() -> Topology {
    let nodes: &[(&str, f64, f64)] = &[
        ("Seattle", 47.61, -122.33),
        ("Sunnyvale", 37.37, -122.04),
        ("Los Angeles", 34.05, -118.24),
        ("Denver", 39.74, -104.99),
        ("Kansas City", 39.10, -94.58),
        ("Houston", 29.76, -95.37),
        ("Indianapolis", 39.77, -86.16),
        ("Chicago", 41.88, -87.63),
        ("Atlanta", 33.75, -84.39),
        ("Washington", 38.91, -77.04),
        ("New York", 40.71, -74.01),
    ];
    let links: &[(&str, &str)] = &[
        ("Seattle", "Sunnyvale"),
        ("Seattle", "Denver"),
        ("Sunnyvale", "Los Angeles"),
        ("Sunnyvale", "Denver"),
        ("Los Angeles", "Houston"),
        ("Denver", "Kansas City"),
        ("Kansas City", "Houston"),
        ("Kansas City", "Indianapolis"),
        ("Houston", "Atlanta"),
        ("Indianapolis", "Chicago"),
        ("Indianapolis", "Atlanta"),
        ("Chicago", "New York"),
        ("Atlanta", "Washington"),
        ("New York", "Washington"),
    ];
    Topology::from_named("abilene", nodes, links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::traversal::is_connected;
    use splice_graph::EdgeMask;

    #[test]
    fn counts() {
        let t = abilene();
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.link_count(), 14);
    }

    #[test]
    fn connected_and_two_connected() {
        let t = abilene();
        let g = t.graph();
        assert!(is_connected(&g, &EdgeMask::all_up(g.edge_count())));
        for n in g.nodes() {
            assert!(g.degree(n) >= 2);
        }
    }

    #[test]
    fn ring_structure_survives_any_single_failure() {
        let t = abilene();
        let g = t.graph();
        for e in g.edge_ids() {
            let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
            assert!(
                is_connected(&g, &mask),
                "single failure of {e:?} disconnects"
            );
        }
    }

    #[test]
    fn no_bridges() {
        // Every link must sit on a cycle: no single failure may partition
        // the topology (an MRC validity requirement, and true of the real
        // backbones these reconstruct).
        let t = abilene();
        let g = t.graph();
        for e in g.edge_ids() {
            let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
            assert!(
                is_connected(&g, &mask),
                "{} - {} is a bridge",
                t.node_name(g.edge(e).u),
                t.node_name(g.edge(e).v)
            );
        }
    }
}
