//! The named-topology model: PoPs with coordinates, links with weights and
//! latencies, and conversion to the algorithmic [`Graph`].

use crate::geo;
use serde::{Deserialize, Serialize};
use splice_graph::{Graph, GraphBuilder, NodeId};
use std::collections::HashMap;

/// A point of presence: a named router location.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable name ("Frankfurt", "sea" …). Unique per topology.
    pub name: String,
    /// Latitude in degrees (positive north).
    pub lat: f64,
    /// Longitude in degrees (positive east).
    pub lon: f64,
}

/// A link between two PoPs (by node index) with an IGP weight and a
/// one-way propagation latency in milliseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// First endpoint, as an index into [`Topology::nodes`].
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// IGP link weight `L(a,b)` — what perturbations act on.
    pub weight: f64,
    /// One-way propagation latency in milliseconds — what stretch-in-delay
    /// is measured against.
    pub latency_ms: f64,
}

/// A named network topology: the unit the simulator ingests.
///
/// `Topology` keeps names and geography; [`Topology::graph`] produces the
/// index-based [`Graph`] all algorithms run on (node `i` in the graph is
/// `nodes[i]` here; edge `j` is `links[j]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    /// Topology name ("geant", "sprint", …).
    pub name: String,
    /// PoPs, index-aligned with graph node ids.
    pub nodes: Vec<NodeSpec>,
    /// Links, index-aligned with graph edge ids.
    pub links: Vec<LinkSpec>,
}

impl Topology {
    /// Build a topology from named nodes and named link pairs, deriving
    /// weights and latencies from great-circle distance (the Rocketfuel
    /// convention; see [`geo`]).
    ///
    /// # Panics
    /// Panics if a link references an unknown node name or if node names
    /// collide — topology data bugs that must not pass silently.
    pub fn from_named(name: &str, nodes: &[(&str, f64, f64)], links: &[(&str, &str)]) -> Topology {
        let mut index = HashMap::new();
        let node_specs: Vec<NodeSpec> = nodes
            .iter()
            .enumerate()
            .map(|(i, &(n, lat, lon))| {
                let prev = index.insert(n.to_string(), i);
                assert!(prev.is_none(), "duplicate node name {n:?}");
                NodeSpec {
                    name: n.to_string(),
                    lat,
                    lon,
                }
            })
            .collect();
        let link_specs = links
            .iter()
            .map(|&(x, y)| {
                let a = *index.get(x).unwrap_or_else(|| panic!("unknown node {x:?}"));
                let b = *index.get(y).unwrap_or_else(|| panic!("unknown node {y:?}"));
                assert_ne!(a, b, "self-link on {x:?}");
                let d = geo::haversine_km(
                    node_specs[a].lat,
                    node_specs[a].lon,
                    node_specs[b].lat,
                    node_specs[b].lon,
                );
                LinkSpec {
                    a,
                    b,
                    weight: geo::distance_weight(d),
                    latency_ms: geo::propagation_latency_ms(d),
                }
            })
            .collect();
        Topology {
            name: name.to_string(),
            nodes: node_specs,
            links: link_specs,
        }
    }

    /// Number of PoPs.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The algorithmic graph: node/edge ids align with `nodes`/`links`
    /// indices; edge weights are the IGP weights.
    pub fn graph(&self) -> Graph {
        let mut b = GraphBuilder::new().with_nodes(self.nodes.len());
        for l in &self.links {
            b.add_edge(NodeId(l.a as u32), NodeId(l.b as u32), l.weight);
        }
        b.build()
    }

    /// Per-edge one-way latencies (ms), indexed by edge id. This is the
    /// vector stretch-in-delay is computed against.
    pub fn latencies(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.latency_ms).collect()
    }

    /// Look up a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// The name of node `id`.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Build an anonymous topology straight from a [`Graph`] (no
    /// geography; latency = weight). Used by the random generators.
    pub fn from_graph(name: &str, g: &Graph) -> Topology {
        Topology {
            name: name.to_string(),
            nodes: (0..g.node_count())
                .map(|i| NodeSpec {
                    name: format!("n{i}"),
                    lat: 0.0,
                    lon: 0.0,
                })
                .collect(),
            links: g
                .edges()
                .iter()
                .map(|e| LinkSpec {
                    a: e.u.index(),
                    b: e.v.index(),
                    weight: e.weight,
                    latency_ms: e.weight,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::traversal::is_connected;
    use splice_graph::EdgeMask;

    fn tiny() -> Topology {
        Topology::from_named(
            "tiny",
            &[
                ("a", 48.85, 2.35),  // Paris
                ("b", 51.50, -0.13), // London
                ("c", 50.11, 8.68),  // Frankfurt
            ],
            &[("a", "b"), ("b", "c"), ("a", "c")],
        )
    }

    #[test]
    fn counts() {
        let t = tiny();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
    }

    #[test]
    fn graph_alignment() {
        let t = tiny();
        let g = t.graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for (i, l) in t.links.iter().enumerate() {
            let e = g.edge(splice_graph::EdgeId(i as u32));
            assert_eq!(e.u.index(), l.a);
            assert_eq!(e.v.index(), l.b);
            assert_eq!(e.weight, l.weight);
        }
        assert!(is_connected(&g, &EdgeMask::all_up(3)));
    }

    #[test]
    fn weights_and_latencies_positive() {
        let t = tiny();
        for l in &t.links {
            assert!(l.weight >= 1.0);
            assert!(l.latency_ms > 0.0);
        }
        assert_eq!(t.latencies().len(), 3);
    }

    #[test]
    fn name_lookup() {
        let t = tiny();
        assert_eq!(t.node_by_name("b"), Some(NodeId(1)));
        assert_eq!(t.node_by_name("zz"), None);
        assert_eq!(t.node_name(NodeId(2)), "c");
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_link_endpoint_panics() {
        Topology::from_named("bad", &[("a", 0.0, 0.0)], &[("a", "zz")]);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        Topology::from_named("bad", &[("a", 0.0, 0.0), ("a", 1.0, 1.0)], &[]);
    }

    #[test]
    fn from_graph_roundtrip() {
        let g = splice_graph::graph::from_edges(3, &[(0, 1, 2.5), (1, 2, 3.5)]);
        let t = Topology::from_graph("gen", &g);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        let g2 = t.graph();
        assert_eq!(g2.base_weights(), g.base_weights());
    }

    #[test]
    fn longer_links_weigh_more() {
        let t = tiny();
        // Paris-London (~343km) < Paris-Frankfurt (~479km).
        assert!(t.links[0].weight < t.links[2].weight);
        assert!(t.links[0].latency_ms < t.links[2].latency_ms);
    }
}
