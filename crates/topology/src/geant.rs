//! The GEANT European research backbone (2004-era), 23 nodes / 37 links.
//!
//! The paper cites geant.net for this topology; the public TOTEM-era map
//! has 23 national PoPs and 37 undirected links. This embedded
//! reconstruction matches those counts and the well-known structure of the
//! network (Frankfurt/London/Paris/Milan/Amsterdam as hubs, a New York PoP
//! dual-homed across the Atlantic, national tails ringed through central
//! Europe). IGP weights and latencies are derived from great-circle
//! distances, the convention Rocketfuel used for inferred weights.

use crate::model::Topology;

/// Build the embedded GEANT topology (23 nodes, 37 links).
pub fn geant() -> Topology {
    let nodes: &[(&str, f64, f64)] = &[
        ("at", 48.21, 16.37),  // Vienna
        ("be", 50.85, 4.35),   // Brussels
        ("ch", 46.20, 6.14),   // Geneva
        ("cz", 50.08, 14.44),  // Prague
        ("de", 50.11, 8.68),   // Frankfurt
        ("es", 40.42, -3.70),  // Madrid
        ("fr", 48.86, 2.35),   // Paris
        ("gr", 37.98, 23.73),  // Athens
        ("hr", 45.81, 15.98),  // Zagreb
        ("hu", 47.50, 19.04),  // Budapest
        ("ie", 53.35, -6.26),  // Dublin
        ("il", 32.08, 34.78),  // Tel Aviv
        ("it", 45.46, 9.19),   // Milan
        ("lu", 49.61, 6.13),   // Luxembourg
        ("nl", 52.37, 4.90),   // Amsterdam
        ("ny", 40.71, -74.01), // New York (trans-Atlantic PoP)
        ("pl", 52.41, 16.93),  // Poznan
        ("pt", 38.72, -9.14),  // Lisbon
        ("ro", 44.43, 26.10),  // Bucharest
        ("se", 59.33, 18.07),  // Stockholm
        ("si", 46.05, 14.51),  // Ljubljana
        ("sk", 48.15, 17.11),  // Bratislava
        ("uk", 51.51, -0.13),  // London
    ];
    let links: &[(&str, &str)] = &[
        ("at", "cz"),
        ("at", "de"),
        ("at", "hu"),
        ("at", "si"),
        ("be", "fr"),
        ("be", "nl"),
        ("ch", "de"),
        ("ch", "fr"),
        ("ch", "it"),
        ("cz", "de"),
        ("cz", "pl"),
        ("cz", "sk"),
        ("de", "fr"),
        ("de", "it"),
        ("de", "nl"),
        ("de", "se"),
        ("de", "ny"),
        ("es", "fr"),
        ("es", "it"),
        ("es", "pt"),
        ("fr", "uk"),
        ("fr", "lu"),
        ("lu", "de"),
        ("gr", "it"),
        ("gr", "ro"),
        ("hr", "si"),
        ("hr", "hu"),
        ("hu", "sk"),
        ("hu", "ro"),
        ("ie", "uk"),
        ("ie", "nl"),
        ("il", "it"),
        ("il", "nl"),
        ("pl", "se"),
        ("pt", "uk"),
        ("nl", "uk"),
        ("ny", "uk"),
    ];
    Topology::from_named("geant", nodes, links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::traversal::is_connected;
    use splice_graph::EdgeMask;

    #[test]
    fn paper_counts() {
        let t = geant();
        assert_eq!(t.node_count(), 23, "GEANT has 23 nodes");
        assert_eq!(t.link_count(), 37, "GEANT has 37 links");
    }

    #[test]
    fn connected() {
        let t = geant();
        let g = t.graph();
        assert!(is_connected(&g, &EdgeMask::all_up(g.edge_count())));
    }

    #[test]
    fn every_pop_is_two_connected() {
        // No single link failure isolates a PoP in GEANT's core map.
        let t = geant();
        let g = t.graph();
        for n in g.nodes() {
            assert!(
                g.degree(n) >= 2,
                "{} has degree {}",
                t.node_name(n),
                g.degree(n)
            );
        }
    }

    #[test]
    fn frankfurt_is_the_hub() {
        let t = geant();
        let g = t.graph();
        let de = t.node_by_name("de").unwrap();
        assert!(g.degree(de) >= 6, "Frankfurt degree {}", g.degree(de));
        assert_eq!(g.max_degree(), g.degree(de));
    }

    #[test]
    fn average_degree_matches_paper_scale() {
        // 2*37/23 ≈ 3.2, a medium-sized ISP mesh.
        let t = geant();
        let avg = 2.0 * t.link_count() as f64 / t.node_count() as f64;
        assert!((3.0..3.5).contains(&avg));
    }

    #[test]
    fn transatlantic_links_are_heavy() {
        let t = geant();
        let g = t.graph();
        let ny = t.node_by_name("ny").unwrap();
        let de = t.node_by_name("de").unwrap();
        let e = g.find_edge(ny, de).expect("ny-de link");
        // ~6200 km -> weight ~62, far above any intra-European link.
        assert!(g.edge(e).weight > 40.0);
    }

    #[test]
    fn no_duplicate_links() {
        let t = geant();
        let mut seen = std::collections::HashSet::new();
        for l in &t.links {
            let key = (l.a.min(l.b), l.a.max(l.b));
            assert!(seen.insert(key), "duplicate link {key:?}");
        }
    }

    #[test]
    fn no_bridges() {
        // Every link must sit on a cycle: no single failure may partition
        // the topology (an MRC validity requirement, and true of the real
        // backbones these reconstruct).
        let t = geant();
        let g = t.graph();
        for e in g.edge_ids() {
            let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
            assert!(
                is_connected(&g, &mask),
                "{} - {} is a bridge",
                t.node_name(g.edge(e).u),
                t.node_name(g.edge(e).v)
            );
        }
    }
}
