//! Regenerate the shipped `data/*.topo` files from the embedded
//! topologies. Run from the workspace root:
//!
//! ```text
//! cargo run -p splice-topology --example dump_topologies
//! ```

fn main() {
    for (name, t) in [
        ("geant", splice_topology::geant::geant()),
        ("sprint", splice_topology::sprint::sprint()),
        ("abilene", splice_topology::abilene::abilene()),
    ] {
        let text = splice_topology::parse::write_edge_list(&t);
        std::fs::write(format!("data/{name}.topo"), text).unwrap();
        println!("wrote data/{name}.topo");
    }
}
