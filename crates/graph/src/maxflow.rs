//! Dinic's maximum-flow algorithm, specialized for unit-capacity edge
//! connectivity.
//!
//! Path splicing's theory (Appendix A) relates the connectivity achieved by
//! a union of `k` perturbed trees to the edge connectivity `χ` of the
//! underlying graph. We measure both with max-flow: each undirected edge
//! becomes a pair of directed arcs of capacity 1, and the s–t max flow
//! equals the number of edge-disjoint s–t paths (Menger's theorem).

use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// A directed flow network with residual arcs.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Per-arc: (to, capacity remaining). Arc `i^1` is the reverse of `i`.
    to: Vec<u32>,
    cap: Vec<i64>,
    /// head[u] = arc indices leaving u.
    head: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// An empty network over `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Add a directed arc `u -> v` with capacity `c` (plus a zero-capacity
    /// residual reverse arc).
    pub fn add_arc(&mut self, u: usize, v: usize, c: i64) {
        let id = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(c);
        self.head[u].push(id);
        self.to.push(u as u32);
        self.cap.push(0);
        self.head[v].push(id + 1);
    }

    /// Add an undirected unit edge: capacity 1 in both directions.
    pub fn add_undirected_unit(&mut self, u: usize, v: usize) {
        // Two arcs each with their own residuals keeps Menger's theorem
        // exact for undirected graphs.
        self.add_arc(u, v, 1);
        self.add_arc(v, u, 1);
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.head.len()];
        let mut q = VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &a in &self.head[u] {
                let v = self.to[a as usize] as usize;
                if self.cap[a as usize] > 0 && level[v] < 0 {
                    level[v] = level[u] + 1;
                    q.push_back(v);
                }
            }
        }
        if level[t] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: i64,
        level: &[i32],
        iter: &mut [usize],
    ) -> i64 {
        if u == t {
            return pushed;
        }
        while iter[u] < self.head[u].len() {
            let a = self.head[u][iter[u]] as usize;
            let v = self.to[a] as usize;
            if self.cap[a] > 0 && level[v] == level[u] + 1 {
                let d = self.dfs_push(v, t, pushed.min(self.cap[a]), level, iter);
                if d > 0 {
                    self.cap[a] -= d;
                    self.cap[a ^ 1] += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Maximum flow from `s` to `t`. Consumes residual capacity; call on a
    /// fresh network per query.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "max flow requires distinct endpoints");
        let mut flow = 0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.head.len()];
            loop {
                let f = self.dfs_push(s, t, i64::MAX, &level, &mut iter);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Number of edge-disjoint paths between `s` and `t` in the undirected
/// graph (its s–t edge connectivity), by unit-capacity max flow.
pub fn edge_connectivity_st(g: &Graph, s: NodeId, t: NodeId) -> usize {
    if s == t {
        return usize::MAX; // conventionally infinite
    }
    let mut net = FlowNetwork::new(g.node_count());
    for e in g.edges() {
        net.add_undirected_unit(e.u.index(), e.v.index());
    }
    net.max_flow(s.index(), t.index()) as usize
}

/// Global edge connectivity: min over t ≠ s0 of s–t connectivity, with s0
/// fixed (a standard reduction — the global min cut separates s0 from
/// someone).
pub fn global_edge_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n < 2 {
        return 0;
    }
    let s0 = NodeId(0);
    (1..n as u32)
        .map(|t| edge_connectivity_st(g, s0, NodeId(t)))
        .min()
        .unwrap_or(0)
}

/// Edge connectivity of a directed successor structure (as produced by a
/// spliced FIB) from `s` toward `target`: the number of arc-disjoint paths.
pub fn succ_connectivity(succ: &[Vec<NodeId>], s: NodeId, target: NodeId) -> usize {
    if s == target {
        return usize::MAX;
    }
    let mut net = FlowNetwork::new(succ.len());
    for (u, outs) in succ.iter().enumerate() {
        for &v in outs {
            net.add_arc(u, v.index(), 1);
        }
    }
    net.max_flow(s.index(), target.index()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    #[test]
    fn single_path_has_connectivity_one() {
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(edge_connectivity_st(&g, NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn ring_has_connectivity_two() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        assert_eq!(edge_connectivity_st(&g, NodeId(0), NodeId(2)), 2);
        assert_eq!(global_edge_connectivity(&g), 2);
    }

    #[test]
    fn complete_graph_connectivity() {
        // K5: global edge connectivity = 4.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v, 1.0));
            }
        }
        let g = from_edges(5, &edges);
        assert_eq!(global_edge_connectivity(&g), 4);
    }

    #[test]
    fn disconnected_graph_zero() {
        let g = from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert_eq!(edge_connectivity_st(&g, NodeId(0), NodeId(2)), 0);
        assert_eq!(global_edge_connectivity(&g), 0);
    }

    #[test]
    fn parallel_edges_add_capacity() {
        let g = from_edges(2, &[(0, 1, 1.0), (0, 1, 1.0), (0, 1, 1.0)]);
        assert_eq!(edge_connectivity_st(&g, NodeId(0), NodeId(1)), 3);
    }

    #[test]
    fn figure1_splicing_motif() {
        // The paper's Figure 1: two disjoint 2-hop paths s(0) -> t(3) via 1
        // and 2, *plus* rungs between them after splicing. Here just the two
        // disjoint paths: connectivity 2.
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)]);
        assert_eq!(edge_connectivity_st(&g, NodeId(0), NodeId(3)), 2);
    }

    #[test]
    fn directed_successor_connectivity() {
        // u0 has two successors each reaching t=3 disjointly.
        let succ = vec![
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(3)],
            vec![NodeId(3)],
            vec![],
        ];
        assert_eq!(succ_connectivity(&succ, NodeId(0), NodeId(3)), 2);
        // Shared bottleneck: both go through node 1.
        let succ2 = vec![
            vec![NodeId(1)],
            vec![NodeId(2), NodeId(3)],
            vec![NodeId(3)],
            vec![],
        ];
        assert_eq!(succ_connectivity(&succ2, NodeId(0), NodeId(3)), 1);
    }

    #[test]
    fn tiny_graphs() {
        let g = from_edges(1, &[]);
        assert_eq!(global_edge_connectivity(&g), 0);
    }
}
