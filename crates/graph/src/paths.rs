//! Concrete paths through a graph, with length and stretch accounting.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// A walk through the graph: `nodes.len() == edges.len() + 1`.
///
/// Paths produced by splicing forwarding may revisit nodes (transient
/// loops), so this type does not require simplicity; [`Path::is_simple`]
/// reports it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Visited nodes in order, from source to destination.
    pub nodes: Vec<NodeId>,
    /// Traversed edges; `edges[i]` connects `nodes[i]` and `nodes[i+1]`.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// A zero-hop path at `n`.
    pub fn trivial(n: NodeId) -> Self {
        Path {
            nodes: vec![n],
            edges: Vec::new(),
        }
    }

    /// Number of hops (edges traversed).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.edges.len()
    }

    /// First node of the walk.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the walk.
    #[inline]
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }

    /// Total length under an arbitrary weight vector (e.g. the base
    /// weights for stretch, or latencies for delay).
    pub fn length(&self, weights: &[f64]) -> f64 {
        self.edges.iter().map(|e| weights[e.index()]).sum()
    }

    /// Total length under the graph's base weights.
    pub fn base_length(&self, g: &Graph) -> f64 {
        self.edges.iter().map(|e| g.edge(*e).weight).sum()
    }

    /// True if no node is visited twice.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|n| seen.insert(*n))
    }

    /// Internal consistency: each edge really connects consecutive nodes.
    pub fn validate(&self, g: &Graph) -> bool {
        if self.nodes.len() != self.edges.len() + 1 {
            return false;
        }
        self.edges.iter().enumerate().all(|(i, &e)| {
            let edge = g.edge(e);
            let (a, b) = (self.nodes[i], self.nodes[i + 1]);
            (edge.u == a && edge.v == b) || (edge.u == b && edge.v == a)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(4));
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.source(), NodeId(4));
        assert_eq!(p.destination(), NodeId(4));
        assert!(p.is_simple());
    }

    #[test]
    fn lengths() {
        let g = from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]);
        let p = Path {
            nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            edges: vec![EdgeId(0), EdgeId(1)],
        };
        assert_eq!(p.base_length(&g), 5.0);
        assert_eq!(p.length(&[10.0, 20.0]), 30.0);
        assert!(p.validate(&g));
    }

    #[test]
    fn non_simple_walk_detected() {
        let p = Path {
            nodes: vec![NodeId(0), NodeId(1), NodeId(0)],
            edges: vec![EdgeId(0), EdgeId(0)],
        };
        assert!(!p.is_simple());
    }

    #[test]
    fn validate_catches_disconnected_edge() {
        let g = from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let p = Path {
            nodes: vec![NodeId(0), NodeId(3)],
            edges: vec![EdgeId(1)], // edge 1 connects 2-3, not 0-3
        };
        assert!(!p.validate(&g));
    }

    #[test]
    fn validate_catches_wrong_arity() {
        let g = from_edges(2, &[(0, 1, 1.0)]);
        let p = Path {
            nodes: vec![NodeId(0), NodeId(1)],
            edges: vec![],
        };
        assert!(!p.validate(&g));
    }
}
