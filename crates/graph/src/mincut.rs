//! Stoer–Wagner global minimum cut.
//!
//! The paper's Figure 1 observation — "with splicing, the failures must
//! induce a graph cut to create a disconnection" — makes the weighted
//! global min cut the natural measure of how much failure a topology can
//! absorb. This module implements Stoer–Wagner over the undirected graph
//! with arbitrary nonnegative edge weights (use weight 1 per edge to count
//! cut *links*).

use crate::graph::Graph;

/// Result of a global min-cut computation.
#[derive(Clone, Debug, PartialEq)]
pub struct MinCut {
    /// Total weight of the lightest cut.
    pub weight: f64,
    /// Nodes on one side of the cut (by index).
    pub partition: Vec<usize>,
}

/// Stoer–Wagner global minimum cut with per-edge weights from `weights`
/// (indexed by edge id). Parallel edges accumulate.
///
/// Returns `None` for graphs with fewer than 2 nodes. A disconnected graph
/// yields weight 0.
pub fn stoer_wagner(g: &Graph, weights: &[f64]) -> Option<MinCut> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    assert_eq!(weights.len(), g.edge_count());

    // Dense adjacency matrix of accumulated weights.
    let mut w = vec![vec![0.0f64; n]; n];
    for (i, e) in g.edges().iter().enumerate() {
        w[e.u.index()][e.v.index()] += weights[i];
        w[e.v.index()][e.u.index()] += weights[i];
    }

    // merged[v] = the original vertices currently contracted into v.
    let mut merged: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best: Option<MinCut> = None;

    while active.len() > 1 {
        // Maximum-adjacency ordering starting from active[0].
        let m = active.len();
        let mut weight_to_a = vec![0.0f64; m]; // indexed by position in `active`
        let mut in_a = vec![false; m];
        let mut order = Vec::with_capacity(m);
        for _ in 0..m {
            // pick the most tightly connected vertex not in A
            let mut sel = usize::MAX;
            for i in 0..m {
                if !in_a[i] && (sel == usize::MAX || weight_to_a[i] > weight_to_a[sel]) {
                    sel = i;
                }
            }
            in_a[sel] = true;
            order.push(sel);
            for i in 0..m {
                if !in_a[i] {
                    weight_to_a[i] += w[active[sel]][active[i]];
                }
            }
        }
        let t_pos = order[m - 1];
        let s_pos = order[m - 2];
        let t = active[t_pos];
        let s = active[s_pos];

        // Cut-of-the-phase: t alone (with everything merged into it) vs rest.
        let cut_weight: f64 = active.iter().filter(|&&v| v != t).map(|&v| w[t][v]).sum();
        let candidate = MinCut {
            weight: cut_weight,
            partition: merged[t].clone(),
        };
        if best.as_ref().is_none_or(|b| candidate.weight < b.weight) {
            best = Some(candidate);
        }

        // Contract t into s.
        let t_merged = std::mem::take(&mut merged[t]);
        merged[s].extend(t_merged);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.remove(t_pos);
    }

    best
}

/// Min cut counting *links* (every edge weight 1): the minimum number of
/// simultaneous link failures that can disconnect the topology.
pub fn min_cut_links(g: &Graph) -> Option<usize> {
    let ones = vec![1.0; g.edge_count()];
    stoer_wagner(g, &ones).map(|c| c.weight.round() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use crate::maxflow::global_edge_connectivity;

    #[test]
    fn ring_min_cut_is_two() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        assert_eq!(min_cut_links(&g), Some(2));
    }

    #[test]
    fn bridge_min_cut_is_one() {
        // Two triangles joined by a single bridge.
        let g = from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0), // bridge
            ],
        );
        let cut = stoer_wagner(&g, &[1.0; 7]).unwrap();
        assert_eq!(cut.weight, 1.0);
        // Partition must be one of the triangles.
        let mut p = cut.partition.clone();
        p.sort_unstable();
        assert!(p == vec![0, 1, 2] || p == vec![3, 4, 5]);
    }

    #[test]
    fn weighted_cut_prefers_light_edges() {
        // 0 -10- 1 -1- 2: the min cut is the light edge.
        let g = from_edges(3, &[(0, 1, 10.0), (1, 2, 1.0)]);
        let cut = stoer_wagner(&g, &g.base_weights()).unwrap();
        assert_eq!(cut.weight, 1.0);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let g = from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let cut = stoer_wagner(&g, &g.base_weights()).unwrap();
        assert_eq!(cut.weight, 0.0);
    }

    #[test]
    fn matches_max_flow_on_small_graphs() {
        // Stoer–Wagner (unit weights) must equal global edge connectivity.
        let cases = [
            from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]),
            from_edges(
                5,
                &[
                    (0, 1, 1.0),
                    (0, 2, 1.0),
                    (1, 2, 1.0),
                    (1, 3, 1.0),
                    (2, 4, 1.0),
                    (3, 4, 1.0),
                    (0, 4, 1.0),
                ],
            ),
            from_edges(2, &[(0, 1, 1.0), (0, 1, 1.0)]),
        ];
        for g in cases {
            assert_eq!(
                min_cut_links(&g).unwrap(),
                global_edge_connectivity(&g),
                "mismatch on graph with {} edges",
                g.edge_count()
            );
        }
    }

    #[test]
    fn too_small_graphs() {
        let g = from_edges(1, &[]);
        assert!(stoer_wagner(&g, &[]).is_none());
        let empty = crate::GraphBuilder::new().build();
        assert!(stoer_wagner(&empty, &[]).is_none());
    }
}
