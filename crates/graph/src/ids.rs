//! Dense integer identifiers for nodes and edges.
//!
//! Both identifiers are plain `u32` indices into the owning [`Graph`]'s
//! storage, wrapped in newtypes so they cannot be confused with each other
//! or with raw loop counters. Algorithms throughout the workspace index
//! per-node and per-edge arrays with these, so they must stay dense.
//!
//! [`Graph`]: crate::Graph

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (router / PoP) within a [`Graph`](crate::Graph).
///
/// Node ids are assigned contiguously from zero in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an undirected edge (link) within a [`Graph`](crate::Graph).
///
/// Edge ids are assigned contiguously from zero in insertion order. A
/// weight vector `&[f64]` indexed by `EdgeId::index` fully describes one
/// routing slice's view of the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize`, for indexing per-edge arrays (weight vectors,
    /// failure masks).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(7);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n:?}"), "n7");
        assert_eq!(format!("{n}"), "7");
        assert_eq!(NodeId::from(7u32), n);
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId(3);
        assert_eq!(e.index(), 3);
        assert_eq!(format!("{e:?}"), "e3");
        assert_eq!(format!("{e}"), "3");
        assert_eq!(EdgeId::from(3u32), e);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }
}
