//! Reachability, components, and traversal under failure masks.
//!
//! The paper's reliability metric (Definition 2.1) asks whether node pairs
//! remain connected after edges fail; the "best possible" curve is plain
//! undirected connectivity of the surviving graph, computed here. The
//! splicing curves need *directed* reachability over per-destination
//! next-hop graphs, served by [`reverse_reachable`].

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::mask::EdgeMask;
use std::collections::VecDeque;

/// Nodes reachable from `src` over up edges (undirected BFS).
/// `reachable[u]` is true iff `u` is connected to `src` in `G - failed`.
pub fn reachable_from(g: &Graph, src: NodeId, mask: &EdgeMask) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut q = VecDeque::new();
    seen[src.index()] = true;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for &(v, e) in g.neighbors(u) {
            if mask.is_up(e) && !seen[v.index()] {
                seen[v.index()] = true;
                q.push_back(v);
            }
        }
    }
    seen
}

/// Whether `s` and `t` are connected in `G - failed`.
pub fn connected(g: &Graph, s: NodeId, t: NodeId, mask: &EdgeMask) -> bool {
    if s == t {
        return true;
    }
    reachable_from(g, s, mask)[t.index()]
}

/// Connected-component labels (0-based, by discovery order) of `G - failed`.
pub fn components(g: &Graph, mask: &EdgeMask) -> Vec<usize> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut q = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        q.push_back(NodeId(start as u32));
        while let Some(u) = q.pop_front() {
            for &(v, e) in g.neighbors(u) {
                if mask.is_up(e) && comp[v.index()] == usize::MAX {
                    comp[v.index()] = next;
                    q.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Whether the whole graph stays connected in `G - failed`
/// (vacuously true for graphs with fewer than two nodes).
pub fn is_connected(g: &Graph, mask: &EdgeMask) -> bool {
    if g.node_count() < 2 {
        return true;
    }
    let comp = components(g, mask);
    comp.iter().all(|&c| c == 0)
}

/// Count ordered `(s, t)` pairs (s ≠ t) that are *disconnected* in
/// `G - failed`. This is the paper's "best possible" disconnection count
/// for one failure sample.
pub fn disconnected_pairs(g: &Graph, mask: &EdgeMask) -> usize {
    let comp = components(g, mask);
    let n = g.node_count();
    let mut sizes = std::collections::HashMap::new();
    for &c in &comp {
        *sizes.entry(c).or_insert(0usize) += 1;
    }
    let same_comp_pairs: usize = sizes.values().map(|&s| s * (s - 1)).sum();
    n * n.saturating_sub(1) - same_comp_pairs
}

/// Directed reverse reachability: given a per-node list of successor nodes
/// (`succ[u]` = nodes `u` may forward to), return which nodes can reach
/// `target` by following successors.
///
/// This is the splicing reachability primitive: for destination `t` with
/// `k` slices, `succ[u]` holds the up-to-`k` next hops of `u` toward `t`,
/// and `u` can deliver to `t` iff `u` is marked here (some sequence of
/// forwarding-bit choices reaches `t`).
pub fn reverse_reachable(succ: &[Vec<NodeId>], target: NodeId) -> Vec<bool> {
    let n = succ.len();
    // Build reverse adjacency once.
    let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (u, outs) in succ.iter().enumerate() {
        for &v in outs {
            rev[v.index()].push(NodeId(u as u32));
        }
    }
    let mut seen = vec![false; n];
    let mut q = VecDeque::new();
    seen[target.index()] = true;
    q.push_back(target);
    while let Some(v) = q.pop_front() {
        for &u in &rev[v.index()] {
            if !seen[u.index()] {
                seen[u.index()] = true;
                q.push_back(u);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use crate::ids::EdgeId;

    fn square() -> Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
    }

    #[test]
    fn full_reachability_when_all_up() {
        let g = square();
        let mask = EdgeMask::all_up(g.edge_count());
        assert!(reachable_from(&g, NodeId(0), &mask).iter().all(|&b| b));
        assert!(is_connected(&g, &mask));
        assert_eq!(disconnected_pairs(&g, &mask), 0);
    }

    #[test]
    fn ring_survives_one_failure_not_two() {
        let g = square();
        let mut mask = EdgeMask::all_up(4);
        mask.fail(EdgeId(0));
        assert!(is_connected(&g, &mask));
        mask.fail(EdgeId(2));
        assert!(!is_connected(&g, &mask));
        // Components {1,2} and {3,0}: 2*2 ordered cross pairs * 2 directions = 8.
        assert_eq!(disconnected_pairs(&g, &mask), 8);
    }

    #[test]
    fn components_label_consistently() {
        let g = from_edges(5, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let mask = EdgeMask::all_up(2);
        let comp = components(&g, &mask);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert_ne!(comp[4], comp[2]);
    }

    #[test]
    fn connected_same_node() {
        let g = square();
        let mask = EdgeMask::all_up(4);
        assert!(connected(&g, NodeId(2), NodeId(2), &mask));
    }

    #[test]
    fn reverse_reachability_directed() {
        // 0 -> 1 -> 2, and 3 -> 1. Target 2: {0,1,2,3} all reach.
        let succ = vec![vec![NodeId(1)], vec![NodeId(2)], vec![], vec![NodeId(1)]];
        let r = reverse_reachable(&succ, NodeId(2));
        assert_eq!(r, vec![true, true, true, true]);
        // Target 0: only 0 itself (no in-edges).
        let r0 = reverse_reachable(&succ, NodeId(0));
        assert_eq!(r0, vec![true, false, false, false]);
    }

    #[test]
    fn reverse_reachability_with_cycle() {
        // 0 <-> 1 cycle, 1 -> 2. All of {0,1} reach 2.
        let succ = vec![vec![NodeId(1)], vec![NodeId(0), NodeId(2)], vec![]];
        let r = reverse_reachable(&succ, NodeId(2));
        assert_eq!(r, vec![true, true, true]);
    }

    #[test]
    fn trivial_graphs_connected() {
        let g = from_edges(1, &[]);
        assert!(is_connected(&g, &EdgeMask::all_up(0)));
        let empty = crate::GraphBuilder::new().build();
        assert!(is_connected(&empty, &EdgeMask::all_up(0)));
    }
}
