//! Yen's k-shortest loopless paths.
//!
//! The paper's pitch is that splicing gets exponential path diversity
//! "without running a protocol that must compute an exponential number
//! of paths". This module implements the thing splicing avoids — explicit
//! k-shortest-path enumeration — so the benchmarks can put numbers on
//! that comparison: per-pair path state and computation for explicit
//! multipath vs per-slice trees.

use crate::dijkstra::dijkstra_masked;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::mask::EdgeMask;
use crate::paths::Path;

/// The `k` shortest loopless paths from `s` to `t` under `weights`,
/// shortest first. Returns fewer when the graph has fewer distinct
/// loopless paths.
pub fn k_shortest_paths(g: &Graph, weights: &[f64], s: NodeId, t: NodeId, k: usize) -> Vec<Path> {
    assert!(k >= 1);
    assert_ne!(s, t, "k-shortest-paths needs distinct endpoints");
    let up = EdgeMask::all_up(g.edge_count());
    let first = {
        let spt = dijkstra_masked(g, t, weights, &up);
        match spt.path_from(s) {
            Some(p) => p,
            None => return Vec::new(),
        }
    };
    let mut accepted: Vec<Path> = vec![first];
    // Candidate set: (length, path), deduplicated by node sequence.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while accepted.len() < k {
        let last = accepted.last().expect("nonempty").clone();
        // Spur from every node of the previous path except t.
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root_nodes = &last.nodes[..=spur_idx];
            let root_edges = &last.edges[..spur_idx];

            // Mask out edges that would recreate an accepted path with
            // this root, and all root nodes except the spur (loopless).
            let mut mask = EdgeMask::all_up(g.edge_count());
            for p in accepted.iter().chain(candidates.iter().map(|(_, p)| p)) {
                if p.nodes.len() > spur_idx && p.nodes[..=spur_idx] == *root_nodes {
                    if let Some(&e) = p.edges.get(spur_idx) {
                        mask.fail(e);
                    }
                }
            }
            let banned: std::collections::HashSet<NodeId> =
                root_nodes[..spur_idx].iter().copied().collect();
            for &n in &banned {
                for &(_, e) in g.neighbors(n) {
                    mask.fail(e);
                }
            }

            let spt = dijkstra_masked(g, t, weights, &mask);
            let Some(spur_path) = spt.path_from(spur_node) else {
                continue;
            };
            // Stitch root + spur.
            let mut nodes = root_nodes.to_vec();
            nodes.extend_from_slice(&spur_path.nodes[1..]);
            let mut edges = root_edges.to_vec();
            edges.extend_from_slice(&spur_path.edges);
            let candidate = Path { nodes, edges };
            if !candidate.is_simple() {
                continue;
            }
            let len = candidate.length(weights);
            let dup = accepted.iter().any(|p| p.nodes == candidate.nodes)
                || candidates.iter().any(|(_, p)| p.nodes == candidate.nodes);
            if !dup {
                candidates.push((len, candidate));
            }
        }
        // Take the best candidate.
        let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("no NaN"))
            .map(|(i, _)| i)
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best_idx).1);
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    fn diamond() -> Graph {
        from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 3, 2.0),
                (0, 2, 2.0),
                (2, 3, 2.0),
                (1, 2, 1.0),
            ],
        )
    }

    #[test]
    fn shortest_first_and_sorted() {
        let g = diamond();
        let w = g.base_weights();
        let paths = k_shortest_paths(&g, &w, NodeId(0), NodeId(3), 4);
        assert!(!paths.is_empty());
        for win in paths.windows(2) {
            assert!(win[0].length(&w) <= win[1].length(&w) + 1e-12);
        }
        // First = Dijkstra's shortest (0-1-3, length 3).
        assert_eq!(paths[0].length(&w), 3.0);
    }

    #[test]
    fn paths_are_loopless_distinct_and_valid() {
        let g = diamond();
        let w = g.base_weights();
        let paths = k_shortest_paths(&g, &w, NodeId(0), NodeId(3), 10);
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(p.is_simple());
            assert!(p.validate(&g));
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.destination(), NodeId(3));
            assert!(seen.insert(p.nodes.clone()), "duplicate path");
        }
        // The diamond (with chord) has exactly 4 simple 0->3 paths:
        // 0-1-3, 0-2-3, 0-1-2-3, 0-2-1-3.
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn matches_brute_force_on_small_graph() {
        // Enumerate all simple paths by DFS and compare the top-k.
        let g = from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 1.5),
                (2, 4, 1.0),
                (0, 3, 2.0),
                (3, 4, 2.5),
                (1, 3, 0.5),
                (2, 3, 1.0),
            ],
        );
        let w = g.base_weights();
        // DFS enumeration.
        fn dfs(
            g: &Graph,
            at: NodeId,
            t: NodeId,
            nodes: &mut Vec<NodeId>,
            edges: &mut Vec<crate::ids::EdgeId>,
            out: &mut Vec<Path>,
        ) {
            if at == t {
                out.push(Path {
                    nodes: nodes.clone(),
                    edges: edges.clone(),
                });
                return;
            }
            for &(nbr, e) in g.neighbors(at) {
                if nodes.contains(&nbr) {
                    continue;
                }
                nodes.push(nbr);
                edges.push(e);
                dfs(g, nbr, t, nodes, edges, out);
                nodes.pop();
                edges.pop();
            }
        }
        let mut all = Vec::new();
        dfs(
            &g,
            NodeId(0),
            NodeId(4),
            &mut vec![NodeId(0)],
            &mut vec![],
            &mut all,
        );
        all.sort_by(|a, b| a.length(&w).partial_cmp(&b.length(&w)).unwrap());

        let yen = k_shortest_paths(&g, &w, NodeId(0), NodeId(4), all.len() + 2);
        assert_eq!(yen.len(), all.len(), "must find every simple path");
        for (y, b) in yen.iter().zip(&all) {
            assert!(
                (y.length(&w) - b.length(&w)).abs() < 1e-9,
                "length mismatch: {} vs {}",
                y.length(&w),
                b.length(&w)
            );
        }
    }

    #[test]
    fn disconnected_returns_empty() {
        let g = from_edges(3, &[(0, 1, 1.0)]);
        let paths = k_shortest_paths(&g, &g.base_weights(), NodeId(0), NodeId(2), 3);
        assert!(paths.is_empty());
    }

    #[test]
    fn k_one_is_just_dijkstra() {
        let g = diamond();
        let w = g.base_weights();
        let paths = k_shortest_paths(&g, &w, NodeId(0), NodeId(3), 1);
        assert_eq!(paths.len(), 1);
        let spt = crate::dijkstra(&g, NodeId(3), &w);
        assert_eq!(paths[0].nodes, spt.path_from(NodeId(0)).unwrap().nodes);
    }
}
