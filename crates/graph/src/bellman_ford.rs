//! Bellman–Ford single-source shortest paths.
//!
//! Used as an independent oracle for property-testing Dijkstra (the two
//! must agree on distances for positive weights) and available to callers
//! who need to sanity-check externally supplied weight vectors.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::mask::EdgeMask;

/// Distances from `root` to every node under `weights`, by Bellman–Ford
/// relaxation over the undirected edge set. Unreachable nodes get
/// `INFINITY`.
///
/// Runs in O(N·M); intended for tests and validation, not the hot path.
pub fn bellman_ford(g: &Graph, root: NodeId, weights: &[f64]) -> Vec<f64> {
    bellman_ford_masked(g, root, weights, None)
}

/// [`bellman_ford`] with an optional failure mask.
pub fn bellman_ford_masked(
    g: &Graph,
    root: NodeId,
    weights: &[f64],
    mask: Option<&EdgeMask>,
) -> Vec<f64> {
    assert_eq!(weights.len(), g.edge_count());
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[root.index()] = 0.0;
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for (i, e) in g.edges().iter().enumerate() {
            if let Some(m) = mask {
                if m.is_failed(crate::ids::EdgeId(i as u32)) {
                    continue;
                }
            }
            let w = weights[i];
            let (du, dv) = (dist[e.u.index()], dist[e.v.index()]);
            if du + w < dv {
                dist[e.v.index()] = du + w;
                changed = true;
            }
            if dv + w < dist[e.u.index()] {
                dist[e.u.index()] = dv + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::graph::from_edges;
    use crate::ids::EdgeId;

    #[test]
    fn matches_dijkstra_on_diamond() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let w = g.base_weights();
        let bf = bellman_ford(&g, NodeId(0), &w);
        let dj = dijkstra(&g, NodeId(0), &w);
        for (a, b) in bf.iter().zip(&dj.dist) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = from_edges(3, &[(0, 1, 1.0)]);
        let d = bellman_ford(&g, NodeId(0), &g.base_weights());
        assert_eq!(d[2], f64::INFINITY);
    }

    #[test]
    fn respects_mask() {
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mask = EdgeMask::from_failed(2, &[EdgeId(1)]);
        let d = bellman_ford_masked(&g, NodeId(0), &g.base_weights(), Some(&mask));
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], f64::INFINITY);
    }
}
