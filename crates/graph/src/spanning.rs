//! Random spanning trees and low-stretch trees for tree-based splicers.
//!
//! "Expanders via Random Spanning Trees" shows that the union of a few
//! *uniform* random spanning trees of a well-connected graph is itself an
//! expander: a handful of trees already carries the edge-disjoint path
//! diversity splicing needs, at O(n) routing state per tree instead of a
//! full shortest-path DAG. The uniform tree is sampled with Wilson's
//! loop-erased random walk, which is exact (unlike random-weight Kruskal)
//! and runs in expected time proportional to the mean hitting time.
//!
//! A [`SpanningForest`] is unrooted: slices orient it per destination by
//! walking the tree from the destination outward ([`parents_toward`]),
//! which is exactly the parent array an SPF run would produce if the tree
//! were the whole topology.
//!
//! [`parents_toward`]: SpanningForest::parents_toward

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::mask::EdgeMask;
use rand::Rng;
use std::collections::VecDeque;

/// An unrooted forest over a graph's nodes: one chosen edge set plus the
/// tree-restricted adjacency needed to orient it toward any destination.
///
/// On a connected (sub)graph this is a spanning tree; under failures each
/// connected component gets its own tree, hence "forest".
#[derive(Clone, Debug, PartialEq)]
pub struct SpanningForest {
    edges: Vec<EdgeId>,
    /// adjacency\[u\] = (neighbor, edge) pairs over tree edges only.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl SpanningForest {
    /// Build a forest from an explicit tree-edge set.
    ///
    /// The edges are trusted to be acyclic; orientation queries would
    /// still terminate on a cyclic set but the result would not be a
    /// routing tree, so generators keep this crate-internal discipline.
    pub fn from_edges(g: &Graph, mut edges: Vec<EdgeId>) -> SpanningForest {
        edges.sort_unstable();
        edges.dedup();
        let mut adjacency = vec![Vec::new(); g.node_count()];
        for &e in &edges {
            let edge = g.edge(e);
            adjacency[edge.u.index()].push((edge.v, e));
            adjacency[edge.v.index()].push((edge.u, e));
        }
        SpanningForest { edges, adjacency }
    }

    /// The chosen tree edges, in increasing id order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of tree edges (`n - components` on a spanning forest).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `(neighbor, edge)` pairs of `n` restricted to tree edges.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[n.index()]
    }

    /// Parent pointers of every node oriented toward `root`: exactly the
    /// array an SPF run would produce if the tree were the topology.
    /// Nodes in other components (and `root` itself) get `None`.
    pub fn parents_toward(&self, root: NodeId) -> Vec<Option<(NodeId, EdgeId)>> {
        let n = self.adjacency.len();
        let mut parent = vec![None; n];
        let mut seen = vec![false; n];
        seen[root.index()] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &(v, e) in &self.adjacency[u.index()] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    parent[v.index()] = Some((u, e));
                    queue.push_back(v);
                }
            }
        }
        parent
    }
}

/// Sample a uniform random spanning forest of the `mask`-up subgraph with
/// Wilson's loop-erased random walk.
///
/// Each connected component is spanned by a tree drawn uniformly from
/// that component's spanning trees. Deterministic given the RNG stream.
pub fn random_spanning_forest<R: Rng>(g: &Graph, mask: &EdgeMask, rng: &mut R) -> SpanningForest {
    let n = g.node_count();
    let mut in_tree = vec![false; n];
    // Walk pointers: the last exit taken from each node during the
    // current walk. Following them after the walk hits the tree yields
    // the loop-erased path for free.
    let mut next: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));

    // Component roots: the lowest-id node of each up-component seeds the
    // tree so every walk has something to hit.
    let roots = component_roots(g, mask);
    for r in roots {
        in_tree[r.index()] = true;
    }

    let mut scratch: Vec<(NodeId, EdgeId)> = Vec::new();
    for start in g.nodes() {
        if in_tree[start.index()] {
            continue;
        }
        // Random walk from `start` until the tree is hit, remembering
        // only the last exit per node (implicit loop erasure).
        let mut u = start;
        while !in_tree[u.index()] {
            scratch.clear();
            scratch.extend(
                g.neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&(_, e)| mask.is_up(e)),
            );
            let &(v, e) = &scratch[rng.gen_range(0..scratch.len())];
            next[u.index()] = Some((v, e));
            u = v;
        }
        // Commit the loop-erased path.
        let mut u = start;
        while !in_tree[u.index()] {
            let (v, e) = next[u.index()].expect("walk recorded an exit");
            in_tree[u.index()] = true;
            edges.push(e);
            u = v;
        }
    }
    SpanningForest::from_edges(g, edges)
}

/// A low-stretch tree proxy: the shortest-path tree of the `mask`-up
/// subgraph rooted at a random node, under the supplied weights.
///
/// A true low-stretch spanning tree (Abraham–Bartal–Neiman) is overkill
/// here; an SPT from a random center already keeps tree-path stretch
/// small on ISP-scale graphs while being exactly reproducible from the
/// RNG stream.
pub fn low_stretch_forest<R: Rng>(
    g: &Graph,
    weights: &[f64],
    mask: &EdgeMask,
    rng: &mut R,
) -> SpanningForest {
    let n = g.node_count();
    if n == 0 {
        return SpanningForest::from_edges(g, Vec::new());
    }
    let root = NodeId(rng.gen_range(0..n as u32));
    let mut ws = crate::dijkstra::SpfWorkspace::new();
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    // The SPT from `root` spans root's component; remaining components
    // get their own SPTs from their lowest-id node, so the forest spans
    // every up-component like the Wilson sampler does.
    let mut covered = vec![false; n];
    let mut pending = vec![root];
    let mut next_probe = 0u32;
    while let Some(r) = pending.pop() {
        if covered[r.index()] {
            continue;
        }
        ws.run(g, r, weights, Some(mask));
        covered[r.index()] = true;
        for (i, p) in ws.parents().iter().enumerate() {
            if let Some((_, e)) = p {
                covered[i] = true;
                edges.push(*e);
            }
        }
        while (next_probe as usize) < n && covered[next_probe as usize] {
            next_probe += 1;
        }
        if (next_probe as usize) < n {
            pending.push(NodeId(next_probe));
        }
    }
    SpanningForest::from_edges(g, edges)
}

/// Lowest-id node of every connected component of the `mask`-up subgraph.
fn component_roots(g: &Graph, mask: &EdgeMask) -> Vec<NodeId> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut roots = Vec::new();
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if seen[s.index()] {
            continue;
        }
        roots.push(s);
        seen[s.index()] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &(v, e) in g.neighbors(u) {
                if mask.is_up(e) && !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn grid() -> Graph {
        // 3x3 grid, unit weights.
        from_edges(
            9,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (6, 7, 1.0),
                (7, 8, 1.0),
                (0, 3, 1.0),
                (3, 6, 1.0),
                (1, 4, 1.0),
                (4, 7, 1.0),
                (2, 5, 1.0),
                (5, 8, 1.0),
            ],
        )
    }

    fn assert_spanning(g: &Graph, f: &SpanningForest, components: usize) {
        assert_eq!(f.edge_count(), g.node_count() - components);
        // n - c edges + exactly c tree-connected components = acyclic
        // and spanning. Count components by flooding tree adjacency.
        let n = g.node_count();
        let mut seen = vec![false; n];
        let mut found = 0usize;
        for s in 0..n {
            if seen[s] {
                continue;
            }
            found += 1;
            seen[s] = true;
            let mut stack = vec![NodeId(s as u32)];
            while let Some(u) = stack.pop() {
                for &(v, _) in f.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
        }
        assert_eq!(found, components);
    }

    #[test]
    fn wilson_spans_connected_graph() {
        let g = grid();
        let mask = EdgeMask::all_up(g.edge_count());
        let mut rng = StdRng::seed_from_u64(7);
        let f = random_spanning_forest(&g, &mask, &mut rng);
        assert_spanning(&g, &f, 1);
        // Every node other than the root has a parent toward any root.
        for root in g.nodes() {
            let parents = f.parents_toward(root);
            for u in g.nodes() {
                if u != root {
                    assert!(
                        parents[u.index()].is_some(),
                        "{u:?} unrouted toward {root:?}"
                    );
                }
            }
            assert!(parents[root.index()].is_none());
        }
    }

    #[test]
    fn wilson_is_deterministic_per_seed_and_varies_across_seeds() {
        let g = grid();
        let mask = EdgeMask::all_up(g.edge_count());
        let sample = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_spanning_forest(&g, &mask, &mut rng)
        };
        assert_eq!(sample(3), sample(3));
        let distinct: HashSet<Vec<EdgeId>> = (0..16).map(|s| sample(s).edges().to_vec()).collect();
        assert!(distinct.len() > 1, "16 seeds should not all pick one tree");
    }

    #[test]
    fn wilson_respects_mask_and_spans_components() {
        let g = grid();
        // Cut the grid into left column {0,3,6} and the rest by failing
        // the three horizontal edges out of the left column.
        let mut mask = EdgeMask::all_up(g.edge_count());
        for (i, e) in g.edges().iter().enumerate() {
            let (a, b) = (e.u.0, e.v.0);
            let left = |x: u32| x == 0 || x == 3 || x == 6;
            if left(a) != left(b) {
                mask.fail(EdgeId(i as u32));
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let f = random_spanning_forest(&g, &mask, &mut rng);
        for &e in f.edges() {
            assert!(mask.is_up(e), "tree used a failed edge");
        }
        assert_spanning(&g, &f, 2);
    }

    #[test]
    fn low_stretch_forest_is_a_shortest_path_tree() {
        let g = grid();
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        let mut rng = StdRng::seed_from_u64(11);
        let f = low_stretch_forest(&g, &w, &mask, &mut rng);
        assert_spanning(&g, &f, 1);
    }

    #[test]
    fn parents_toward_orients_the_tree() {
        let g = from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let f = SpanningForest::from_edges(&g, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        let p = f.parents_toward(NodeId(3));
        assert_eq!(p[0], Some((NodeId(1), EdgeId(0))));
        assert_eq!(p[2], Some((NodeId(3), EdgeId(2))));
        assert_eq!(p[3], None);
    }

    #[test]
    fn single_node_graph() {
        let g = from_edges(1, &[]);
        let mask = EdgeMask::all_up(0);
        let mut rng = StdRng::seed_from_u64(1);
        let f = random_spanning_forest(&g, &mask, &mut rng);
        assert_eq!(f.edge_count(), 0);
    }
}
