//! The weighted undirected multigraph at the heart of the workspace.
//!
//! A [`Graph`] is immutable once built (use [`GraphBuilder`] to construct
//! one). Immutability is deliberate: path splicing runs *many* routing
//! instances and *many* Monte-Carlo failure trials over one topology, so the
//! topology is shared read-only across threads while weights
//! (`&[f64]` indexed by [`EdgeId`]) and failures ([`EdgeMask`]) vary
//! per-slice and per-trial.
//!
//! [`EdgeMask`]: crate::EdgeMask

use crate::dijkstra::WeightError;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// An undirected edge: two endpoints and a default (unperturbed) weight.
///
/// The stored weight is the *base* link weight `L(i,j)` from the paper;
/// perturbed slices supply their own weight vectors and never mutate this.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint (the one passed first to [`GraphBuilder::add_edge`]).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Base link weight `L(u,v)`; must be positive and finite.
    pub weight: f64,
}

impl Edge {
    /// The endpoint opposite `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else if n == self.v {
            self.u
        } else {
            panic!("node {n:?} is not an endpoint of edge {self:?}");
        }
    }

    /// Whether `n` is one of this edge's endpoints.
    #[inline]
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.u || n == self.v
    }
}

/// A weighted undirected multigraph with dense node/edge ids.
///
/// Parallel edges and explicit weights are supported because ISP topologies
/// (e.g. Rocketfuel-inferred maps) contain both. Self-loops are rejected at
/// build time — they are meaningless for routing and would create trivial
/// forwarding loops.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    node_count: usize,
    edges: Vec<Edge>,
    /// adjacency\[u\] = (neighbor, edge id) pairs, in edge-insertion order.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids, `n0..n(N-1)`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count as u32).map(NodeId)
    }

    /// Iterator over all edge ids, `e0..e(M-1)`.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// All edges, indexable by [`EdgeId::index`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// `(neighbor, edge)` pairs incident to `n`, in insertion order.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[n.index()]
    }

    /// Degree of `n` (counting parallel edges separately, as the paper's
    /// degree-based perturbation does — a node with two parallel links to a
    /// hub is "more connected" than one with a single link).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count)
            .map(|i| self.adjacency[i].len())
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.node_count)
            .map(|i| self.adjacency[i].len())
            .min()
            .unwrap_or(0)
    }

    /// The base weight vector, one entry per edge, indexed by [`EdgeId`].
    ///
    /// This is the `L(i,j)` vector that perturbation strategies start from.
    pub fn base_weights(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.weight).collect()
    }

    /// Look up an edge id connecting `u` and `v`, if any. With parallel
    /// edges, returns the first by insertion order.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adjacency
            .get(u.index())?
            .iter()
            .find(|(n, _)| *n == v)
            .map(|(_, e)| *e)
    }

    /// Sum of `degree(u) + degree(v)` extremes: the minimum and maximum
    /// degree-sum over all edges. The paper's degree-based perturbation maps
    /// this range linearly onto `[a, b]`.
    pub fn degree_sum_range(&self) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for e in &self.edges {
            let s = self.degree(e.u) + self.degree(e.v);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        if self.edges.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    }
}

/// Builder for [`Graph`]. Nodes are added implicitly (`with_nodes`) or by
/// growing to the largest referenced id; edges are validated as they are
/// added.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-declare `n` nodes with ids `0..n`.
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.node_count = self.node_count.max(n);
        self
    }

    /// Declare nodes so that `id` is valid.
    pub fn ensure_node(&mut self, id: NodeId) {
        self.node_count = self.node_count.max(id.index() + 1);
    }

    /// Add an undirected edge with base weight `weight`, rejecting
    /// non-finite or non-positive weights with the same typed error
    /// [`validate_weights`] reports. Zero-weight links would later make
    /// the paper's `Random(0, L)` perturbation an empty range, so they are
    /// stopped here, at construction, instead of panicking mid-build.
    ///
    /// # Panics
    /// Panics on self-loops — those are structural topology-file bugs, not
    /// recoverable input.
    ///
    /// [`validate_weights`]: crate::dijkstra::validate_weights
    pub fn try_add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        weight: f64,
    ) -> Result<EdgeId, WeightError> {
        assert!(u != v, "self-loop on {u:?} rejected");
        if !(weight.is_finite() && weight > 0.0) {
            return Err(WeightError::BadWeight {
                edge: EdgeId(self.edges.len() as u32),
                value: weight,
            });
        }
        self.ensure_node(u);
        self.ensure_node(v);
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { u, v, weight });
        Ok(id)
    }

    /// Add an undirected edge with base weight `weight`.
    ///
    /// # Panics
    /// Panics on self-loops and on non-finite or non-positive weights; both
    /// are topology-file bugs we want to surface immediately. Use
    /// [`GraphBuilder::try_add_edge`] to handle bad weights gracefully.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> EdgeId {
        match self.try_add_edge(u, v, weight) {
            Ok(id) => id,
            Err(_) => panic!("edge weight must be positive and finite, got {weight}"),
        }
    }

    /// Convenience: add an edge by raw indices with weight 1.0.
    pub fn add_unit_edge(&mut self, u: u32, v: u32) -> EdgeId {
        self.add_edge(NodeId(u), NodeId(v), 1.0)
    }

    /// Finish building; computes adjacency lists.
    pub fn build(self) -> Graph {
        let mut adjacency = vec![Vec::new(); self.node_count];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            adjacency[e.u.index()].push((e.v, id));
            adjacency[e.v.index()].push((e.u, id));
        }
        Graph {
            node_count: self.node_count,
            edges: self.edges,
            adjacency,
        }
    }
}

/// Build a graph from `(u, v, weight)` triples over `n` nodes.
///
/// Convenience for tests and topology construction.
pub fn from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Graph {
    let mut b = GraphBuilder::new().with_nodes(n);
    for &(u, v, w) in edges {
        b.add_edge(NodeId(u), NodeId(v), w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
    }

    #[test]
    fn counts_and_iterators() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.edge_ids().count(), 3);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(g
                .neighbors(edge.u)
                .iter()
                .any(|&(n, id)| n == edge.v && id == e));
            assert!(g
                .neighbors(edge.v)
                .iter()
                .any(|&(n, id)| n == edge.u && id == e));
        }
    }

    #[test]
    fn degrees() {
        let g = triangle();
        for n in g.nodes() {
            assert_eq!(g.degree(n), 2);
        }
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn parallel_edges_allowed_and_counted() {
        let g = from_edges(2, &[(0, 1, 1.0), (0, 1, 5.0)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        // find_edge returns the first parallel edge.
        assert_eq!(g.find_edge(NodeId(0), NodeId(1)), Some(EdgeId(0)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut b = GraphBuilder::new().with_nodes(1);
        b.add_edge(NodeId(0), NodeId(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_weight_rejected() {
        let mut b = GraphBuilder::new().with_nodes(2);
        b.add_edge(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nan_weight_rejected() {
        let mut b = GraphBuilder::new().with_nodes(2);
        b.add_edge(NodeId(0), NodeId(1), f64::NAN);
    }

    #[test]
    fn try_add_edge_reports_typed_weight_errors() {
        let mut b = GraphBuilder::new().with_nodes(2);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            match b.try_add_edge(NodeId(0), NodeId(1), bad) {
                Err(WeightError::BadWeight { edge, .. }) => assert_eq!(edge, EdgeId(0)),
                other => panic!("expected BadWeight for {bad}, got {other:?}"),
            }
        }
        // Rejected edges leave the builder untouched; good ones still land.
        let id = b.try_add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        assert_eq!(id, EdgeId(0));
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(NodeId(0)), NodeId(1));
        assert_eq!(e.other(NodeId(1)), NodeId(0));
        assert!(e.touches(NodeId(0)));
        assert!(!e.touches(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let g = triangle();
        g.edge(EdgeId(0)).other(NodeId(2));
    }

    #[test]
    fn base_weights_match_insertion() {
        let g = triangle();
        assert_eq!(g.base_weights(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn degree_sum_range_triangle() {
        let g = triangle();
        assert_eq!(g.degree_sum_range(), (4, 4));
    }

    #[test]
    fn degree_sum_range_star() {
        // star: center degree 3, leaves degree 1 -> all edges sum to 4.
        let g = from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        assert_eq!(g.degree_sum_range(), (4, 4));
        // path: 0-1-2 -> sums are 3 (end edges).
        let p = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(p.degree_sum_range(), (3, 3));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.degree_sum_range(), (0, 0));
    }

    #[test]
    fn implicit_node_growth() {
        let g = from_edges(0, &[(0, 5, 1.0)]);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.degree(NodeId(3)), 0);
    }
}
