//! Arc-disjoint failover DAGs: the static-failover baseline.
//!
//! "Exploring the Limits of Static Failover Routing" shows that the
//! strongest static (no-reconvergence) protection a forwarding plane can
//! offer is bounded by per-destination arc-disjoint routes: if every
//! router owns `k` pairwise arc-disjoint out-arcs toward a destination,
//! up to `k - 1` adversarial link cuts are survivable by local rerouting
//! alone. This module constructs that baseline greedily: slice 0 is the
//! plain shortest-path tree; each later slice re-runs Dijkstra with every
//! `(router, out-edge)` pair already claimed by earlier slices toward the
//! same destination forbidden. Routers whose arcs toward the destination
//! are exhausted simply stay unrouted in later slices — the splicing
//! header walks back onto an earlier slice instead.
//!
//! Determinism matters more than optimality here (the sweep compares
//! strategies at fixed seeds), so ties break exactly like
//! [`SpfWorkspace`]: first by distance, then by (parent node, edge) id.
//!
//! [`arc_diverse_parents`] is the delivery-preserving variant: instead of
//! forbidding spent arcs outright it charges them a penalty larger than
//! any real path, so a router reuses an arc only when it has no fresh one
//! left. Every slice is then a full Dijkstra tree — loop-free and
//! destination-reaching wherever the destination is reachable at all —
//! while staying maximally arc-disjoint. That is the contract the
//! splicing slice strategy needs.
//!
//! [`SpfWorkspace`]: crate::dijkstra::SpfWorkspace

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::mask::EdgeMask;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Parent arrays for `k` arc-disjoint slices toward `root`.
///
/// `result[s][u]` is the `(next hop, edge)` router `u` uses toward `root`
/// in slice `s`, or `None` when slice `s` leaves `u` unrouted (its arcs
/// toward `root` are exhausted or the destination is unreachable under
/// `mask`). Slice `s + 1` never reuses a `(router, out-edge)` pair chosen
/// by slices `0..=s`, so the per-router out-arcs are pairwise disjoint.
pub fn arc_disjoint_parents(
    g: &Graph,
    root: NodeId,
    weights: &[f64],
    mask: &EdgeMask,
    k: usize,
) -> Vec<Vec<Option<(NodeId, EdgeId)>>> {
    let n = g.node_count();
    // used[u] holds the edge ids router u already spent toward `root`.
    // Degrees are small on ISP maps, so a linear scan beats hashing.
    let mut used: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    let mut slices = Vec::with_capacity(k);
    for _ in 0..k {
        let (parents, _) = forbidden_dijkstra(g, root, weights, mask, &used, None);
        for (u, p) in parents.iter().enumerate() {
            if let Some((_, e)) = p {
                used[u].push(*e);
            }
        }
        slices.push(parents);
    }
    slices
}

/// Like [`arc_disjoint_parents`], but delivery-preserving: arcs spent by
/// earlier slices cost a penalty exceeding any real path instead of being
/// forbidden, so a router falls back to a spent arc rather than going
/// unrouted. Every slice is a complete shortest-path tree of the
/// `mask`-up subgraph — loop-free, and reaching `root` from every node
/// that can reach it at all — with out-arcs pairwise disjoint wherever
/// the router's up-degree allows.
pub fn arc_diverse_parents(
    g: &Graph,
    root: NodeId,
    weights: &[f64],
    mask: &EdgeMask,
    k: usize,
) -> Vec<Vec<Option<(NodeId, EdgeId)>>> {
    let n = g.node_count();
    // Larger than any loop-free path cost, so Dijkstra reuses a spent arc
    // only when every fresh alternative is exhausted; real weights still
    // break ties among routes with equally many reused arcs.
    let penalty: f64 = weights
        .iter()
        .enumerate()
        .filter(|(i, _)| mask.is_up(EdgeId(*i as u32)))
        .map(|(_, w)| w)
        .sum::<f64>()
        + 1.0;
    let mut used: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    let mut slices = Vec::with_capacity(k);
    for _ in 0..k {
        let (mut parents, dist) = forbidden_dijkstra(g, root, weights, mask, &used, Some(penalty));
        // Diversion pass: Dijkstra minimizes reused arcs along the whole
        // path, which lets a router far from `root` keep its slice-0 arc
        // because every alternative carries the same downstream penalty.
        // A router stuck on a spent arc instead diverts to any fresh arc
        // that is strictly downhill in the penalized distance field: the
        // potential still decreases at every hop (the Dijkstra parent is
        // downhill by construction, the diverted one by the guard), so
        // columns stay loop-free and delivering.
        for u in g.nodes() {
            let ui = u.index();
            if u == root {
                continue;
            }
            let Some((_, e0)) = parents[ui] else { continue };
            if !used[ui].contains(&e0) {
                continue;
            }
            let mut best: Option<(f64, NodeId, EdgeId)> = None;
            for &(v, e) in g.neighbors(u) {
                if mask.is_failed(e) || used[ui].contains(&e) || dist[v.index()] >= dist[ui] {
                    continue;
                }
                let cost = dist[v.index()] + weights[e.index()];
                let better = match best {
                    None => true,
                    Some((bc, bv, be)) => cost < bc || (cost == bc && (v, e) < (bv, be)),
                };
                if better {
                    best = Some((cost, v, e));
                }
            }
            if let Some((_, v, e)) = best {
                parents[ui] = Some((v, e));
            }
        }
        for (u, p) in parents.iter().enumerate() {
            if let Some((_, e)) = p {
                if !used[u].contains(e) {
                    used[u].push(*e);
                }
            }
        }
        slices.push(parents);
    }
    slices
}

/// Heap entry ordered for a min-heap with the workspace tie-break:
/// smaller distance first, then smaller (parent node, edge).
struct Entry {
    dist: f64,
    node: NodeId,
    parent: (NodeId, EdgeId),
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest pops first.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.parent.cmp(&self.parent))
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra toward `root` that either refuses to route `u` over any edge
/// listed in `used[u]` (`penalty: None`) or charges those arcs the given
/// surcharge (`penalty: Some(p)`). Lazy-deletion variant with the
/// deterministic tie-break.
fn forbidden_dijkstra(
    g: &Graph,
    root: NodeId,
    weights: &[f64],
    mask: &EdgeMask,
    used: &[Vec<EdgeId>],
    penalty: Option<f64>,
) -> (Vec<Option<(NodeId, EdgeId)>>, Vec<f64>) {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    dist[root.index()] = 0.0;
    heap.push(Entry {
        dist: 0.0,
        node: root,
        parent: (root, EdgeId(u32::MAX)),
    });
    while let Some(Entry {
        dist: d, node: v, ..
    }) = heap.pop()
    {
        if settled[v.index()] || d > dist[v.index()] {
            continue;
        }
        settled[v.index()] = true;
        for &(u, e) in g.neighbors(v) {
            if settled[u.index()] || mask.is_failed(e) {
                continue;
            }
            let spent = used[u.index()].contains(&e);
            let surcharge = match (spent, penalty) {
                (false, _) => 0.0,
                (true, Some(p)) => p,
                (true, None) => continue,
            };
            let nd = d + weights[e.index()] + surcharge;
            let better = nd < dist[u.index()]
                || (nd == dist[u.index()] && parent[u.index()].map_or(true, |cur| (v, e) < cur));
            if better {
                dist[u.index()] = nd;
                parent[u.index()] = Some((v, e));
                heap.push(Entry {
                    dist: nd,
                    node: u,
                    parent: (v, e),
                });
            }
        }
    }
    parent[root.index()] = None;
    (parent, dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    fn diamond() -> Graph {
        // 0-1-3 and 0-2-3 plus the chord 1-2: two arc-disjoint routes
        // from 0 to 3.
        from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 3, 1.0),
                (0, 2, 1.0),
                (2, 3, 1.0),
                (1, 2, 1.0),
            ],
        )
    }

    #[test]
    fn slice_zero_is_shortest_paths() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        let slices = arc_disjoint_parents(&g, NodeId(3), &w, &mask, 1);
        let spt = crate::dijkstra::dijkstra(&g, NodeId(3), &w);
        for u in g.nodes() {
            assert_eq!(
                slices[0][u.index()].map(|(p, _)| p),
                spt.next_hop(u),
                "slice 0 disagrees with plain SPF at {u:?}"
            );
        }
    }

    #[test]
    fn out_arcs_are_disjoint_across_slices() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        let slices = arc_disjoint_parents(&g, NodeId(3), &w, &mask, 3);
        for u in g.nodes() {
            let mut seen = Vec::new();
            for sl in &slices {
                if let Some((_, e)) = sl[u.index()] {
                    assert!(!seen.contains(&e), "{u:?} reused edge {e:?}");
                    seen.push(e);
                }
            }
        }
    }

    #[test]
    fn exhausted_routers_go_unrouted_not_looping() {
        // A path graph: node 0 has exactly one arc, so slice 1 must leave
        // it unrouted rather than route it somewhere bogus.
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        let slices = arc_disjoint_parents(&g, NodeId(2), &w, &mask, 2);
        assert!(slices[0][0].is_some());
        assert!(slices[1][0].is_none(), "slice 1 should exhaust node 0");
    }

    #[test]
    fn columns_are_loop_free() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        for root in g.nodes() {
            let slices = arc_disjoint_parents(&g, root, &w, &mask, 4);
            for sl in &slices {
                for start in g.nodes() {
                    // Follow parents; must hit root or a dead end within n hops.
                    let mut u = start;
                    let mut hops = 0;
                    while let Some((p, _)) = sl[u.index()] {
                        u = p;
                        hops += 1;
                        assert!(hops <= g.node_count(), "loop toward {root:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn respects_failure_mask() {
        let g = diamond();
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(1)); // 1-3 down
        let w = g.base_weights();
        let slices = arc_disjoint_parents(&g, NodeId(3), &w, &mask, 2);
        for sl in &slices {
            for u in g.nodes() {
                if let Some((_, e)) = sl[u.index()] {
                    assert!(mask.is_up(e));
                }
            }
        }
    }

    #[test]
    fn diverse_variant_always_delivers() {
        // Path graph: node 0 has one arc, so the strict variant strands it
        // in slice 1 but the diverse one reuses the arc.
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        let slices = arc_diverse_parents(&g, NodeId(2), &w, &mask, 3);
        for sl in &slices {
            for u in g.nodes() {
                if u != NodeId(2) {
                    assert!(sl[u.index()].is_some(), "{u:?} stranded");
                }
            }
            assert!(sl[2].is_none());
        }
    }

    #[test]
    fn diverse_variant_prefers_fresh_arcs() {
        // Toward node 3 slice 0 (the SPT) spends both arcs into the
        // root, so the root's neighbors must reuse them in slice 1 —
        // delivery outranks disjointness there. Node 0, whose spare arc
        // leads somewhere useful, switches to it.
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        let slices = arc_diverse_parents(&g, NodeId(3), &w, &mask, 2);
        for sl in &slices {
            for u in g.nodes() {
                if u != NodeId(3) {
                    assert!(sl[u.index()].is_some(), "{u:?} stranded");
                }
            }
        }
        let a = slices[0][0].map(|(_, e)| e);
        let b = slices[1][0].map(|(_, e)| e);
        assert_ne!(a, b, "node 0 reused an arc despite a useful spare");
    }

    #[test]
    fn diverse_variant_is_loop_free() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        for root in g.nodes() {
            let slices = arc_diverse_parents(&g, root, &w, &mask, 4);
            for sl in &slices {
                for start in g.nodes() {
                    let mut u = start;
                    let mut hops = 0;
                    while let Some((p, _)) = sl[u.index()] {
                        u = p;
                        hops += 1;
                        assert!(hops <= g.node_count(), "loop toward {root:?}");
                    }
                    assert!(u == root, "{start:?} dead-ends short of {root:?}");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        let a = arc_disjoint_parents(&g, NodeId(0), &w, &mask, 3);
        let b = arc_disjoint_parents(&g, NodeId(0), &w, &mask, 3);
        assert_eq!(a, b);
    }
}
