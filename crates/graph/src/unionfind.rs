//! Disjoint-set union (union–find) with path halving and union by size.
//!
//! Used for fast connectivity queries during bulk failure sampling: rather
//! than BFS per pair, one pass over surviving edges gives all components.

/// Union–find over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 3)); // already together
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.component_size(0), 4);
    }

    #[test]
    fn transitivity() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn large_chain() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.same(0, n - 1));
    }
}
