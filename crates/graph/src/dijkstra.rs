//! Dijkstra's algorithm producing destination-rooted shortest-path trees.
//!
//! Because the graph is undirected, a tree computed *from* the root equals
//! the tree of shortest paths *toward* the root, which is exactly the FIB a
//! link-state router installs for that destination. The weight vector is a
//! parameter so that each splicing slice can run the same topology under
//! its own perturbed weights.
//!
//! Ties are broken deterministically by preferring the lower-numbered
//! parent node (and then lower edge id), so that two runs over identical
//! inputs produce identical trees — a requirement for reproducible
//! Monte-Carlo experiments with common random numbers.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::mask::EdgeMask;
use crate::spt::Spt;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Why a weight vector is unusable for shortest-path computation.
///
/// Slice builders validate weights up front with [`validate_weights`] and
/// surface this error, instead of tripping a panic deep inside the heap
/// comparator on a NaN produced by a bad perturbation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightError {
    /// The vector is not edge-indexed: one entry per edge is required.
    LengthMismatch {
        /// The graph's edge count.
        expected: usize,
        /// The vector's length.
        got: usize,
    },
    /// An entry is NaN, infinite, zero, or negative.
    BadWeight {
        /// The offending edge.
        edge: EdgeId,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WeightError::LengthMismatch { expected, got } => write!(
                f,
                "weight vector length {got} must equal edge count {expected}"
            ),
            WeightError::BadWeight { edge, value } => {
                write!(f, "weight {value} on {edge:?} must be positive and finite")
            }
        }
    }
}

impl std::error::Error for WeightError {}

/// Check that `weights` is edge-indexed and every entry is a positive,
/// finite number — the preconditions Dijkstra's relaxations rely on.
pub fn validate_weights(g: &Graph, weights: &[f64]) -> Result<(), WeightError> {
    if weights.len() != g.edge_count() {
        return Err(WeightError::LengthMismatch {
            expected: g.edge_count(),
            got: weights.len(),
        });
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w <= 0.0 {
            return Err(WeightError::BadWeight {
                edge: EdgeId(i as u32),
                value: w,
            });
        }
    }
    Ok(())
}

/// Heap entry: min-heap by distance, tie-broken by node id.
#[derive(Copy, Clone, Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap semantics on BinaryHeap (a max-heap).
        // `total_cmp` gives a total order even on NaN (which validated
        // weights never produce), so ordering cannot panic.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable Dijkstra buffers: distance, parent, settled flags, and the
/// heap, reset in O(n) per run instead of reallocated.
///
/// A splicing build runs k·n destination-rooted Dijkstras over one graph;
/// holding one workspace across all of them keeps the hot loop free of
/// allocator traffic. Results are read through [`SpfWorkspace::parents`]
/// and [`SpfWorkspace::distances`] immediately after [`SpfWorkspace::run`].
#[derive(Debug, Default)]
pub struct SpfWorkspace {
    dist: Vec<f64>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    /// Scratch for repair: per-node clean/dirty classification.
    mark: Vec<u8>,
}

/// `mark` value: the node's tree chain avoids every affected edge, so its
/// distance and parent are provably unchanged by the event.
const MARK_CLEAN: u8 = 1;
/// `mark` value: the node is in an affected subtree and must be re-relaxed.
const MARK_DIRTY: u8 = 2;

impl SpfWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> SpfWorkspace {
        SpfWorkspace::default()
    }

    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.parent.clear();
        self.parent.resize(n, None);
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
    }

    /// Run Dijkstra rooted at `root` under `weights`, skipping edges
    /// failed in `mask` (if any). Identical tie-breaking to [`dijkstra`]:
    /// lower parent node id, then lower edge id — trees are bit-identical
    /// whichever entry point computes them.
    ///
    /// # Panics
    /// Panics if `weights.len() != g.edge_count()`.
    pub fn run(&mut self, g: &Graph, root: NodeId, weights: &[f64], mask: Option<&EdgeMask>) {
        assert_eq!(
            weights.len(),
            g.edge_count(),
            "weight vector length must equal edge count"
        );
        self.reset(g.node_count());
        self.dist[root.index()] = 0.0;
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: root,
        });
        self.drain(g, weights, mask);
    }

    /// The shared settle loop: pop in distance order, relax neighbors with
    /// the deterministic tie-break. Used by both full runs ([`Self::run`])
    /// and incremental repairs, so repaired trees are produced by the exact
    /// relaxation rule a from-scratch build uses.
    fn drain(&mut self, g: &Graph, weights: &[f64], mask: Option<&EdgeMask>) {
        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            if self.settled[u.index()] {
                continue;
            }
            self.settled[u.index()] = true;
            for &(v, e) in g.neighbors(u) {
                if let Some(m) = mask {
                    if m.is_failed(e) {
                        continue;
                    }
                }
                if self.settled[v.index()] {
                    continue;
                }
                // Weight sanity is [`validate_weights`]'s job at slice-build
                // time; the hot loop stays assertion-free and, thanks to
                // `total_cmp`, terminates even on smuggled NaN.
                let nd = d + weights[e.index()];
                if self.offer(u, e, v, nd) {
                    self.heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
    }

    /// Offer `v` the route "via `u` over `e` at distance `nd`"; record it
    /// if it is better under the canonical rule (strictly shorter, or equal
    /// with a lexicographically smaller `(parent node, edge)` pair) and
    /// report whether it was taken.
    ///
    /// The equal-distance tie-break makes the final parent a pure function
    /// of the exact distances: whichever order offers arrive in, the stored
    /// parent converges to the lexicographic minimum over all optimal
    /// predecessors. That is what lets an incremental repair reproduce a
    /// full rebuild bit for bit.
    #[inline]
    fn offer(&mut self, u: NodeId, e: EdgeId, v: NodeId, nd: f64) -> bool {
        let better = match nd.total_cmp(&self.dist[v.index()]) {
            Ordering::Less => true,
            // Deterministic tie-break: prefer the lower parent node
            // id, then the lower edge id.
            Ordering::Equal => match self.parent[v.index()] {
                Some((pu, pe)) => (u, e) < (pu, pe),
                None => true,
            },
            Ordering::Greater => false,
        };
        if better {
            self.dist[v.index()] = nd;
            self.parent[v.index()] = Some((u, e));
        }
        better
    }

    /// Parent pointers of the last run: `parents()[u]` is `u`'s next hop
    /// and outgoing edge toward the root (`None` at the root itself and on
    /// unreachable nodes).
    #[inline]
    pub fn parents(&self) -> &[Option<(NodeId, EdgeId)>] {
        &self.parent
    }

    /// Distances of the last run, `f64::INFINITY` when unreachable.
    #[inline]
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Load an existing shortest-path tree into the workspace so it can be
    /// repaired incrementally: `parent_of(u)` supplies `u`'s stored next
    /// hop and outgoing edge toward `root` (`None` at the root and on
    /// unreachable nodes), exactly the shape a FIB column stores.
    ///
    /// Distances are reconstructed by walking parent chains and summing
    /// `weights` parent-first — the same `dist[parent] + w(edge)` additions
    /// the original Dijkstra run performed, so the reconstructed values are
    /// bit-identical to the ones the full run computed.
    ///
    /// # Panics
    /// Panics if `weights.len() != g.edge_count()` or the parent pointers
    /// contain a cycle.
    pub fn load_tree<F>(&mut self, g: &Graph, root: NodeId, weights: &[f64], parent_of: F)
    where
        F: Fn(usize) -> Option<(NodeId, EdgeId)>,
    {
        assert_eq!(
            weights.len(),
            g.edge_count(),
            "weight vector length must equal edge count"
        );
        let n = g.node_count();
        self.reset(n);
        self.dist[root.index()] = 0.0;
        self.settled[root.index()] = true;
        for u in 0..n {
            self.parent[u] = parent_of(u);
        }
        debug_assert!(self.parent[root.index()].is_none(), "root has no parent");
        let mut chain = Vec::new();
        for start in 0..n {
            if self.settled[start] || self.parent[start].is_none() {
                continue;
            }
            chain.clear();
            let mut u = start;
            while !self.settled[u] {
                match self.parent[u] {
                    Some((p, _)) => {
                        chain.push(u);
                        assert!(chain.len() <= n, "parent pointers contain a cycle");
                        u = p.index();
                    }
                    None => break,
                }
            }
            if self.settled[u] {
                // Chain reaches the root: fill distances parent-first.
                while let Some(v) = chain.pop() {
                    let (p, e) = self.parent[v].expect("chained node has a parent");
                    self.dist[v] = self.dist[p.index()] + weights[e.index()];
                    self.settled[v] = true;
                }
            } else {
                // Chain dead-ends at a parentless non-root node; such
                // entries cannot come from a valid SPT — treat the whole
                // chain as unreachable rather than trusting them.
                for &v in &chain {
                    self.parent[v] = None;
                }
            }
        }
    }

    /// Classify every node as clean or dirty by walking its parent chain:
    /// dirty if the chain passes through a node for which `dirty_root`
    /// returns true (chains are memoized, so this is O(n) total). Returns
    /// the dirty count.
    fn mark_dirty_subtrees<F>(&mut self, root: NodeId, dirty_root: F) -> usize
    where
        F: Fn(usize, Option<(NodeId, EdgeId)>) -> bool,
    {
        let n = self.parent.len();
        self.mark.clear();
        self.mark.resize(n, 0);
        self.mark[root.index()] = MARK_CLEAN;
        let mut dirty = 0usize;
        let mut chain = Vec::new();
        for start in 0..n {
            if self.mark[start] != 0 {
                continue;
            }
            chain.clear();
            let mut u = start;
            let state = loop {
                if self.mark[u] != 0 {
                    break self.mark[u];
                }
                chain.push(u);
                assert!(chain.len() <= n, "parent pointers contain a cycle");
                if dirty_root(u, self.parent[u]) {
                    break MARK_DIRTY;
                }
                match self.parent[u] {
                    Some((p, _)) => u = p.index(),
                    // Unreachable before the event; stays untouched.
                    None => break MARK_CLEAN,
                }
            };
            for &v in &chain {
                self.mark[v] = state;
                if state == MARK_DIRTY {
                    dirty += 1;
                }
            }
        }
        dirty
    }

    /// Reset every dirty node, then re-seed each one from its settled
    /// (clean, reachable) neighbors over up edges and run the shared
    /// settle loop. The seeding offers every clean optimal predecessor
    /// before any dirty node settles; dirty predecessors are offered in
    /// settle order, exactly as in a full run — so the recomputed subtree
    /// is bit-identical to a from-scratch rebuild.
    fn reseed_dirty(&mut self, g: &Graph, weights: &[f64], mask: &EdgeMask) {
        self.heap.clear();
        for u in 0..self.mark.len() {
            if self.mark[u] == MARK_DIRTY {
                self.dist[u] = f64::INFINITY;
                self.parent[u] = None;
                self.settled[u] = false;
            }
        }
        for d in 0..self.mark.len() {
            if self.mark[d] != MARK_DIRTY {
                continue;
            }
            let v = NodeId(d as u32);
            for &(u, e) in g.neighbors(v) {
                if mask.is_failed(e) || !self.settled[u.index()] {
                    continue;
                }
                let nd = self.dist[u.index()] + weights[e.index()];
                if self.offer(u, e, v, nd) {
                    self.heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
        self.drain(g, weights, Some(mask));
    }

    /// Incrementally repair the loaded tree after the links in
    /// `newly_failed` went down. `mask` is the *new* cumulative failure
    /// mask (with `newly_failed` already failed); the workspace must hold
    /// the tree that was correct immediately before the event (via
    /// [`Self::run`], [`Self::load_tree`], or a previous repair).
    ///
    /// Only the subtrees hanging below a failed tree edge are recomputed;
    /// every other node's distance and parent are provably unchanged.
    /// Returns the number of affected (re-relaxed) nodes — the repair
    /// frontier.
    pub fn repair_failures(
        &mut self,
        g: &Graph,
        root: NodeId,
        weights: &[f64],
        mask: &EdgeMask,
        newly_failed: &[EdgeId],
    ) -> usize {
        assert_eq!(
            weights.len(),
            g.edge_count(),
            "weight vector length must equal edge count"
        );
        assert_eq!(
            self.dist.len(),
            g.node_count(),
            "workspace does not hold a tree for this graph"
        );
        let dirty = self.mark_dirty_subtrees(
            root,
            |_, p| matches!(p, Some((_, e)) if newly_failed.contains(&e)),
        );
        if dirty > 0 {
            self.reseed_dirty(g, weights, mask);
        }
        dirty
    }

    /// Incrementally repair the loaded tree after `edge`'s weight changed
    /// from `old_weight` to `weights[edge]` (`weights` is the full *new*
    /// vector). The workspace must hold the tree that was correct under
    /// the old weights and `mask`. Returns the number of nodes whose
    /// distance or parent changed.
    ///
    /// Weight increases repair the failed-link way: only the subtree below
    /// `edge` (when it is a tree edge) is re-relaxed; an increase on a
    /// non-tree edge is a complete no-op. Weight decreases propagate
    /// strict improvements outward from `edge` and then recompute the
    /// canonical parent wherever a distance changed — parents are a pure
    /// function of exact distances under the deterministic tie-break, so
    /// this too matches a full rebuild bit for bit.
    pub fn repair_reweight(
        &mut self,
        g: &Graph,
        root: NodeId,
        weights: &[f64],
        mask: &EdgeMask,
        edge: EdgeId,
        old_weight: f64,
    ) -> usize {
        assert_eq!(
            weights.len(),
            g.edge_count(),
            "weight vector length must equal edge count"
        );
        assert_eq!(
            self.dist.len(),
            g.node_count(),
            "workspace does not hold a tree for this graph"
        );
        let new_w = weights[edge.index()];
        assert!(
            new_w.is_finite() && new_w > 0.0,
            "weight {new_w} on {edge:?} must be positive and finite"
        );
        if mask.is_failed(edge) || new_w == old_weight {
            return 0;
        }
        let (eu, ev) = (g.edge(edge).u, g.edge(edge).v);
        if new_w > old_weight {
            // Increase: affects shortest paths only when `edge` carries
            // tree traffic, i.e. one endpoint's parent pointer crosses it.
            let child = if self.parent[eu.index()] == Some((ev, edge)) {
                Some(eu)
            } else if self.parent[ev.index()] == Some((eu, edge)) {
                Some(ev)
            } else {
                None
            };
            let Some(x) = child else { return 0 };
            let dirty = self.mark_dirty_subtrees(root, |u, _| u == x.index());
            self.reseed_dirty(g, weights, mask);
            return dirty;
        }
        // Decrease: relax `edge` in both directions under the new weight,
        // then propagate strict improvements. Distances converge to the
        // exact fixpoint (every value is some path's weight fold, and
        // every edge constraint is re-checked when its tail improves).
        self.heap.clear();
        self.mark.clear();
        self.mark.resize(g.node_count(), 0);
        let mut changed = 0usize;
        for (a, b) in [(eu, ev), (ev, eu)] {
            if self.dist[a.index()].is_finite() {
                let nd = self.dist[a.index()] + new_w;
                if nd.total_cmp(&self.dist[b.index()]) == Ordering::Less {
                    self.dist[b.index()] = nd;
                    self.heap.push(HeapEntry { dist: nd, node: b });
                    if self.mark[b.index()] == 0 {
                        self.mark[b.index()] = MARK_DIRTY;
                        changed += 1;
                    }
                }
            }
        }
        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            if d.total_cmp(&self.dist[u.index()]) == Ordering::Greater {
                continue; // stale entry, a better one was pushed later
            }
            for &(v, e) in g.neighbors(u) {
                if mask.is_failed(e) {
                    continue;
                }
                let nd = d + weights[e.index()];
                if nd.total_cmp(&self.dist[v.index()]) == Ordering::Less {
                    self.dist[v.index()] = nd;
                    self.heap.push(HeapEntry { dist: nd, node: v });
                    if self.mark[v.index()] == 0 {
                        self.mark[v.index()] = MARK_DIRTY;
                        changed += 1;
                    }
                }
            }
        }
        if changed == 0 {
            // No distance moved, but the cheaper edge may have become an
            // optimal predecessor of one of its endpoints, which can win
            // the lexicographic tie-break.
            let mut touched = 0usize;
            for v in [eu, ev] {
                if self.recompute_parent(g, weights, mask, root, v) {
                    touched += 1;
                }
            }
            return touched;
        }
        // Some distances dropped, so any node adjacent to a changed one
        // may have gained a better-ranked optimal predecessor: recompute
        // every canonical parent from the (now exact) distances.
        for v in g.nodes() {
            self.recompute_parent(g, weights, mask, root, v);
        }
        changed
    }

    /// Set `parent[v]` to the canonical choice — the lexicographically
    /// smallest `(u, e)` over up edges with `dist[u] + w(e) == dist[v]` —
    /// and report whether it changed. This is exactly the parent a full
    /// Dijkstra run converges to under the equal-distance tie-break.
    fn recompute_parent(
        &mut self,
        g: &Graph,
        weights: &[f64],
        mask: &EdgeMask,
        root: NodeId,
        v: NodeId,
    ) -> bool {
        if v == root || !self.dist[v.index()].is_finite() {
            return false;
        }
        let dv = self.dist[v.index()];
        let mut best: Option<(NodeId, EdgeId)> = None;
        for &(u, e) in g.neighbors(v) {
            if mask.is_failed(e) {
                continue;
            }
            let du = self.dist[u.index()];
            if !du.is_finite() {
                continue;
            }
            if (du + weights[e.index()]).total_cmp(&dv) == Ordering::Equal
                && best.is_none_or(|b| (u, e) < b)
            {
                best = Some((u, e));
            }
        }
        if self.parent[v.index()] != best {
            self.parent[v.index()] = best;
            true
        } else {
            false
        }
    }
}

/// Compute the shortest-path tree rooted at `root` under `weights`.
///
/// `weights` must have one positive, finite entry per edge, indexed by
/// [`EdgeId`]. All links are considered up; see [`dijkstra_masked`] for
/// failure scenarios.
///
/// Weights are assumed positive and finite — run [`validate_weights`]
/// first when they come from untrusted input. Ordering inside the walk
/// uses `f64::total_cmp`, so even a NaN that slips past validation
/// terminates the walk instead of panicking a comparator.
///
/// # Panics
/// Panics if `weights.len() != g.edge_count()`.
pub fn dijkstra(g: &Graph, root: NodeId, weights: &[f64]) -> Spt {
    dijkstra_inner(g, root, weights, None)
}

/// Like [`dijkstra`], but edges failed in `mask` are skipped entirely.
pub fn dijkstra_masked(g: &Graph, root: NodeId, weights: &[f64], mask: &EdgeMask) -> Spt {
    dijkstra_inner(g, root, weights, Some(mask))
}

fn dijkstra_inner(g: &Graph, root: NodeId, weights: &[f64], mask: Option<&EdgeMask>) -> Spt {
    let mut ws = SpfWorkspace::new();
    ws.run(g, root, weights, mask);
    Spt {
        root,
        dist: std::mem::take(&mut ws.dist),
        parent: std::mem::take(&mut ws.parent),
    }
}

/// Compute one SPT per destination: `result[t.index()]` is the tree rooted
/// at `t`. This is exactly the state one routing-protocol instance (one
/// slice) installs across the network.
pub fn all_destinations(g: &Graph, weights: &[f64]) -> Vec<Spt> {
    g.nodes().map(|t| dijkstra(g, t, weights)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    /// The classic diamond: two routes 0->3, lengths 3 (via 1) and 4 (via 2).
    fn diamond() -> Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    #[test]
    fn picks_shorter_route() {
        let g = diamond();
        let spt = dijkstra(&g, NodeId(3), &g.base_weights());
        assert_eq!(spt.distance(NodeId(0)), 3.0);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(1)));
    }

    #[test]
    fn alternate_weights_change_route() {
        let g = diamond();
        // Inflate the 1-3 link: now via 2 is shorter.
        let w = vec![1.0, 10.0, 2.0, 2.0];
        let spt = dijkstra(&g, NodeId(3), &w);
        assert_eq!(spt.distance(NodeId(0)), 4.0);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(2)));
    }

    #[test]
    fn masked_edge_is_avoided() {
        let g = diamond();
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(1)); // kill 1-3
        let spt = dijkstra_masked(&g, NodeId(3), &g.base_weights(), &mask);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(2)));
        assert_eq!(spt.distance(NodeId(0)), 4.0);
    }

    #[test]
    fn disconnection_under_mask() {
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mut mask = EdgeMask::all_up(2);
        mask.fail(EdgeId(1));
        let spt = dijkstra_masked(&g, NodeId(2), &g.base_weights(), &mask);
        assert!(!spt.reaches(NodeId(0)));
        assert!(!spt.reaches(NodeId(1)));
        assert!(spt.reaches(NodeId(2)));
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-length routes 0->1->3 and 0->2->3; parent of 3 must be
        // the lower node id (1) every time.
        let g = from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]);
        for _ in 0..10 {
            let spt = dijkstra(&g, NodeId(0), &g.base_weights());
            assert_eq!(spt.next_hop(NodeId(3)), Some(NodeId(1)));
        }
    }

    #[test]
    fn parallel_edges_use_cheapest() {
        let g = from_edges(2, &[(0, 1, 5.0), (0, 1, 1.0)]);
        let spt = dijkstra(&g, NodeId(1), &g.base_weights());
        assert_eq!(spt.distance(NodeId(0)), 1.0);
        assert_eq!(spt.next_edge(NodeId(0)), Some(EdgeId(1)));
    }

    #[test]
    fn all_destinations_gives_n_trees() {
        let g = diamond();
        let trees = all_destinations(&g, &g.base_weights());
        assert_eq!(trees.len(), 4);
        for (i, t) in trees.iter().enumerate() {
            assert_eq!(t.root, NodeId(i as u32));
            assert_eq!(t.distance(t.root), 0.0);
        }
    }

    #[test]
    fn spt_distances_satisfy_triangle_property() {
        // For every tree edge (u -> parent p via e): dist[u] = dist[p] + w(e).
        let g = diamond();
        let w = g.base_weights();
        let spt = dijkstra(&g, NodeId(0), &w);
        for u in g.nodes() {
            if let Some((p, e)) = spt.parent[u.index()] {
                let expect = spt.dist[p.index()] + w[e.index()];
                assert!((spt.dist[u.index()] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn wrong_weight_length_panics() {
        let g = diamond();
        dijkstra(&g, NodeId(0), &[1.0]);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let g = diamond();
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        for root in g.nodes() {
            ws.run(&g, root, &w, None);
            let fresh = dijkstra(&g, root, &w);
            assert_eq!(ws.parents(), &fresh.parent[..], "root {root:?}");
            assert_eq!(ws.distances(), &fresh.dist[..], "root {root:?}");
        }
        // Masked runs through the same workspace also match.
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(1));
        ws.run(&g, NodeId(3), &w, Some(&mask));
        let fresh = dijkstra_masked(&g, NodeId(3), &w, &mask);
        assert_eq!(ws.parents(), &fresh.parent[..]);
    }

    #[test]
    fn validate_weights_accepts_good_vectors() {
        let g = diamond();
        assert_eq!(validate_weights(&g, &g.base_weights()), Ok(()));
    }

    #[test]
    fn validate_weights_rejects_bad_vectors() {
        let g = diamond();
        assert_eq!(
            validate_weights(&g, &[1.0]),
            Err(WeightError::LengthMismatch {
                expected: 4,
                got: 1
            })
        );
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let mut w = g.base_weights();
            w[2] = bad;
            match validate_weights(&g, &w) {
                Err(WeightError::BadWeight { edge, .. }) => assert_eq!(edge, EdgeId(2)),
                other => panic!("expected BadWeight for {bad}, got {other:?}"),
            }
        }
        // The error renders a human-readable message.
        let msg = validate_weights(&g, &[1.0]).unwrap_err().to_string();
        assert!(msg.contains("weight vector length"), "{msg}");
    }

    /// Assert the workspace holds exactly the tree a fresh masked run
    /// computes: distances and parents, bit for bit.
    fn assert_matches_fresh(
        ws: &SpfWorkspace,
        g: &Graph,
        root: NodeId,
        w: &[f64],
        mask: &EdgeMask,
    ) {
        let fresh = dijkstra_masked(g, root, w, mask);
        assert_eq!(ws.parents(), &fresh.parent[..], "parents, root {root:?}");
        assert_eq!(ws.distances(), &fresh.dist[..], "distances, root {root:?}");
    }

    #[test]
    fn load_tree_reconstructs_run_state() {
        let g = diamond();
        let w = g.base_weights();
        for root in g.nodes() {
            let fresh = dijkstra(&g, root, &w);
            let mut ws = SpfWorkspace::new();
            ws.load_tree(&g, root, &w, |u| fresh.parent[u]);
            assert_eq!(ws.parents(), &fresh.parent[..]);
            assert_eq!(ws.distances(), &fresh.dist[..]);
        }
    }

    #[test]
    fn load_tree_leaves_unreachable_nodes_alone() {
        let g = from_edges(3, &[(0, 1, 1.0)]); // node 2 isolated
        let fresh = dijkstra(&g, NodeId(0), &g.base_weights());
        let mut ws = SpfWorkspace::new();
        ws.load_tree(&g, NodeId(0), &g.base_weights(), |u| fresh.parent[u]);
        assert_eq!(ws.distances()[2], f64::INFINITY);
        assert_eq!(ws.parents()[2], None);
    }

    #[test]
    fn repair_single_failure_matches_fresh_run() {
        let g = diamond();
        let w = g.base_weights();
        for root in g.nodes() {
            for e in g.edge_ids() {
                let mut ws = SpfWorkspace::new();
                ws.run(&g, root, &w, None);
                let mut mask = EdgeMask::all_up(g.edge_count());
                mask.fail(e);
                ws.repair_failures(&g, root, &w, &mask, &[e]);
                assert_matches_fresh(&ws, &g, root, &w, &mask);
            }
        }
    }

    #[test]
    fn repair_respects_tie_break() {
        // Two equal routes to 3; fail the winning one, repair must fall
        // back exactly where a fresh run would.
        let g = from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]);
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        ws.run(&g, NodeId(0), &w, None);
        assert_eq!(ws.parents()[3], Some((NodeId(1), EdgeId(2))));
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(2));
        ws.repair_failures(&g, NodeId(0), &w, &mask, &[EdgeId(2)]);
        assert_eq!(ws.parents()[3], Some((NodeId(2), EdgeId(3))));
        assert_matches_fresh(&ws, &g, NodeId(0), &w, &mask);
    }

    #[test]
    fn repair_stacked_failures_match_fresh_run() {
        // Ring of 5 with a chord: fail two edges one after the other; each
        // repair starts from the previous repaired state.
        let g = from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
                (1, 3, 2.5),
            ],
        );
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        ws.run(&g, NodeId(0), &w, None);
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(0));
        ws.repair_failures(&g, NodeId(0), &w, &mask, &[EdgeId(0)]);
        assert_matches_fresh(&ws, &g, NodeId(0), &w, &mask);
        mask.fail(EdgeId(4));
        ws.repair_failures(&g, NodeId(0), &w, &mask, &[EdgeId(4)]);
        assert_matches_fresh(&ws, &g, NodeId(0), &w, &mask);
    }

    #[test]
    fn repair_disconnecting_failure_marks_unreachable() {
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        ws.run(&g, NodeId(2), &w, None);
        let mut mask = EdgeMask::all_up(2);
        mask.fail(EdgeId(1));
        let frontier = ws.repair_failures(&g, NodeId(2), &w, &mask, &[EdgeId(1)]);
        assert_eq!(frontier, 2, "both 0 and 1 hang below the failed link");
        assert_matches_fresh(&ws, &g, NodeId(2), &w, &mask);
        assert_eq!(ws.distances()[0], f64::INFINITY);
    }

    #[test]
    fn repair_non_tree_failure_is_noop() {
        let g = diamond();
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        ws.run(&g, NodeId(3), &w, None);
        // 0-2 (edge 2) carries no tree traffic toward 3: 0 routes via 1,
        // 2 routes directly via edge 3.
        assert_eq!(ws.parents()[0], Some((NodeId(1), EdgeId(0))));
        assert_eq!(ws.parents()[2], Some((NodeId(3), EdgeId(3))));
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(2));
        let frontier = ws.repair_failures(&g, NodeId(3), &w, &mask, &[EdgeId(2)]);
        assert_eq!(frontier, 0);
        assert_matches_fresh(&ws, &g, NodeId(3), &w, &mask);
    }

    #[test]
    fn repair_weight_increase_matches_fresh_run() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        for root in g.nodes() {
            for e in g.edge_ids() {
                let old = g.base_weights();
                let mut new_w = old.clone();
                new_w[e.index()] *= 7.5;
                let mut ws = SpfWorkspace::new();
                ws.run(&g, root, &old, None);
                ws.repair_reweight(&g, root, &new_w, &mask, e, old[e.index()]);
                assert_matches_fresh(&ws, &g, root, &new_w, &mask);
            }
        }
    }

    #[test]
    fn repair_weight_decrease_matches_fresh_run() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        for root in g.nodes() {
            for e in g.edge_ids() {
                let old = g.base_weights();
                let mut new_w = old.clone();
                new_w[e.index()] *= 0.25;
                let mut ws = SpfWorkspace::new();
                ws.run(&g, root, &old, None);
                ws.repair_reweight(&g, root, &new_w, &mask, e, old[e.index()]);
                assert_matches_fresh(&ws, &g, root, &new_w, &mask);
            }
        }
    }

    #[test]
    fn repair_decrease_rewins_tie_break() {
        // 0-2 costs 2.0 while 0-1-3 keeps 0's route via 1; dropping 0-2 to
        // 1.0 creates an equal-cost two-hop path 0-2-3 — no distance moves
        // for node 0's route toward 3 via 1 (cost 3) vs via 2 (cost 3),
        // and the tie-break must land exactly where a fresh run does.
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        let old = g.base_weights(); // [1, 2, 2, 2]
        let mut new_w = old.clone();
        new_w[2] = 1.0; // 0-2 now 1.0: path 0-2-3 costs 3.0, ties 0-1-3
        let mut ws = SpfWorkspace::new();
        ws.run(&g, NodeId(3), &old, None);
        ws.repair_reweight(&g, NodeId(3), &new_w, &mask, EdgeId(2), old[2]);
        assert_matches_fresh(&ws, &g, NodeId(3), &new_w, &mask);
    }

    #[test]
    fn repair_reweight_same_weight_is_noop() {
        let g = diamond();
        let mask = EdgeMask::all_up(g.edge_count());
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        ws.run(&g, NodeId(0), &w, None);
        assert_eq!(
            ws.repair_reweight(&g, NodeId(0), &w, &mask, EdgeId(1), w[1]),
            0
        );
        assert_matches_fresh(&ws, &g, NodeId(0), &w, &mask);
    }

    #[test]
    fn nan_distance_does_not_panic_the_heap() {
        // Even with a NaN smuggled past validation, ordering is total:
        // the walk terminates instead of panicking in the comparator.
        let g = diamond();
        let w = vec![f64::NAN, 2.0, 2.0, 2.0];
        let spt = dijkstra(&g, NodeId(3), &w);
        assert_eq!(spt.root, NodeId(3));
    }
}
