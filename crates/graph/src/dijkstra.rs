//! Dijkstra's algorithm producing destination-rooted shortest-path trees.
//!
//! Because the graph is undirected, a tree computed *from* the root equals
//! the tree of shortest paths *toward* the root, which is exactly the FIB a
//! link-state router installs for that destination. The weight vector is a
//! parameter so that each splicing slice can run the same topology under
//! its own perturbed weights.
//!
//! Ties are broken deterministically by preferring the lower-numbered
//! parent node (and then lower edge id), so that two runs over identical
//! inputs produce identical trees — a requirement for reproducible
//! Monte-Carlo experiments with common random numbers.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::mask::EdgeMask;
use crate::spt::Spt;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Why a weight vector is unusable for shortest-path computation.
///
/// Slice builders validate weights up front with [`validate_weights`] and
/// surface this error, instead of tripping a panic deep inside the heap
/// comparator on a NaN produced by a bad perturbation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightError {
    /// The vector is not edge-indexed: one entry per edge is required.
    LengthMismatch {
        /// The graph's edge count.
        expected: usize,
        /// The vector's length.
        got: usize,
    },
    /// An entry is NaN, infinite, zero, or negative.
    BadWeight {
        /// The offending edge.
        edge: EdgeId,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WeightError::LengthMismatch { expected, got } => write!(
                f,
                "weight vector length {got} must equal edge count {expected}"
            ),
            WeightError::BadWeight { edge, value } => {
                write!(f, "weight {value} on {edge:?} must be positive and finite")
            }
        }
    }
}

impl std::error::Error for WeightError {}

/// Check that `weights` is edge-indexed and every entry is a positive,
/// finite number — the preconditions Dijkstra's relaxations rely on.
pub fn validate_weights(g: &Graph, weights: &[f64]) -> Result<(), WeightError> {
    if weights.len() != g.edge_count() {
        return Err(WeightError::LengthMismatch {
            expected: g.edge_count(),
            got: weights.len(),
        });
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w <= 0.0 {
            return Err(WeightError::BadWeight {
                edge: EdgeId(i as u32),
                value: w,
            });
        }
    }
    Ok(())
}

/// Heap entry: min-heap by distance, tie-broken by node id.
#[derive(Copy, Clone, Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap semantics on BinaryHeap (a max-heap).
        // `total_cmp` gives a total order even on NaN (which validated
        // weights never produce), so ordering cannot panic.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable Dijkstra buffers: distance, parent, settled flags, and the
/// heap, reset in O(n) per run instead of reallocated.
///
/// A splicing build runs k·n destination-rooted Dijkstras over one graph;
/// holding one workspace across all of them keeps the hot loop free of
/// allocator traffic. Results are read through [`SpfWorkspace::parents`]
/// and [`SpfWorkspace::distances`] immediately after [`SpfWorkspace::run`].
#[derive(Debug, Default)]
pub struct SpfWorkspace {
    dist: Vec<f64>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
}

impl SpfWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> SpfWorkspace {
        SpfWorkspace::default()
    }

    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.parent.clear();
        self.parent.resize(n, None);
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
    }

    /// Run Dijkstra rooted at `root` under `weights`, skipping edges
    /// failed in `mask` (if any). Identical tie-breaking to [`dijkstra`]:
    /// lower parent node id, then lower edge id — trees are bit-identical
    /// whichever entry point computes them.
    ///
    /// # Panics
    /// Panics if `weights.len() != g.edge_count()`.
    pub fn run(&mut self, g: &Graph, root: NodeId, weights: &[f64], mask: Option<&EdgeMask>) {
        assert_eq!(
            weights.len(),
            g.edge_count(),
            "weight vector length must equal edge count"
        );
        self.reset(g.node_count());
        self.dist[root.index()] = 0.0;
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: root,
        });

        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            if self.settled[u.index()] {
                continue;
            }
            self.settled[u.index()] = true;
            for &(v, e) in g.neighbors(u) {
                if let Some(m) = mask {
                    if m.is_failed(e) {
                        continue;
                    }
                }
                if self.settled[v.index()] {
                    continue;
                }
                // Weight sanity is [`validate_weights`]'s job at slice-build
                // time; the hot loop stays assertion-free and, thanks to
                // `total_cmp`, terminates even on smuggled NaN.
                let nd = d + weights[e.index()];
                let better = match nd.total_cmp(&self.dist[v.index()]) {
                    Ordering::Less => true,
                    // Deterministic tie-break: prefer the lower parent node
                    // id, then the lower edge id.
                    Ordering::Equal => match self.parent[v.index()] {
                        Some((pu, pe)) => (u, e) < (pu, pe),
                        None => true,
                    },
                    Ordering::Greater => false,
                };
                if better {
                    self.dist[v.index()] = nd;
                    self.parent[v.index()] = Some((u, e));
                    self.heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
    }

    /// Parent pointers of the last run: `parents()[u]` is `u`'s next hop
    /// and outgoing edge toward the root (`None` at the root itself and on
    /// unreachable nodes).
    #[inline]
    pub fn parents(&self) -> &[Option<(NodeId, EdgeId)>] {
        &self.parent
    }

    /// Distances of the last run, `f64::INFINITY` when unreachable.
    #[inline]
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }
}

/// Compute the shortest-path tree rooted at `root` under `weights`.
///
/// `weights` must have one positive, finite entry per edge, indexed by
/// [`EdgeId`]. All links are considered up; see [`dijkstra_masked`] for
/// failure scenarios.
///
/// Weights are assumed positive and finite — run [`validate_weights`]
/// first when they come from untrusted input. Ordering inside the walk
/// uses `f64::total_cmp`, so even a NaN that slips past validation
/// terminates the walk instead of panicking a comparator.
///
/// # Panics
/// Panics if `weights.len() != g.edge_count()`.
pub fn dijkstra(g: &Graph, root: NodeId, weights: &[f64]) -> Spt {
    dijkstra_inner(g, root, weights, None)
}

/// Like [`dijkstra`], but edges failed in `mask` are skipped entirely.
pub fn dijkstra_masked(g: &Graph, root: NodeId, weights: &[f64], mask: &EdgeMask) -> Spt {
    dijkstra_inner(g, root, weights, Some(mask))
}

fn dijkstra_inner(g: &Graph, root: NodeId, weights: &[f64], mask: Option<&EdgeMask>) -> Spt {
    let mut ws = SpfWorkspace::new();
    ws.run(g, root, weights, mask);
    Spt {
        root,
        dist: std::mem::take(&mut ws.dist),
        parent: std::mem::take(&mut ws.parent),
    }
}

/// Compute one SPT per destination: `result[t.index()]` is the tree rooted
/// at `t`. This is exactly the state one routing-protocol instance (one
/// slice) installs across the network.
pub fn all_destinations(g: &Graph, weights: &[f64]) -> Vec<Spt> {
    g.nodes().map(|t| dijkstra(g, t, weights)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    /// The classic diamond: two routes 0->3, lengths 3 (via 1) and 4 (via 2).
    fn diamond() -> Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    #[test]
    fn picks_shorter_route() {
        let g = diamond();
        let spt = dijkstra(&g, NodeId(3), &g.base_weights());
        assert_eq!(spt.distance(NodeId(0)), 3.0);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(1)));
    }

    #[test]
    fn alternate_weights_change_route() {
        let g = diamond();
        // Inflate the 1-3 link: now via 2 is shorter.
        let w = vec![1.0, 10.0, 2.0, 2.0];
        let spt = dijkstra(&g, NodeId(3), &w);
        assert_eq!(spt.distance(NodeId(0)), 4.0);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(2)));
    }

    #[test]
    fn masked_edge_is_avoided() {
        let g = diamond();
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(1)); // kill 1-3
        let spt = dijkstra_masked(&g, NodeId(3), &g.base_weights(), &mask);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(2)));
        assert_eq!(spt.distance(NodeId(0)), 4.0);
    }

    #[test]
    fn disconnection_under_mask() {
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mut mask = EdgeMask::all_up(2);
        mask.fail(EdgeId(1));
        let spt = dijkstra_masked(&g, NodeId(2), &g.base_weights(), &mask);
        assert!(!spt.reaches(NodeId(0)));
        assert!(!spt.reaches(NodeId(1)));
        assert!(spt.reaches(NodeId(2)));
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-length routes 0->1->3 and 0->2->3; parent of 3 must be
        // the lower node id (1) every time.
        let g = from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]);
        for _ in 0..10 {
            let spt = dijkstra(&g, NodeId(0), &g.base_weights());
            assert_eq!(spt.next_hop(NodeId(3)), Some(NodeId(1)));
        }
    }

    #[test]
    fn parallel_edges_use_cheapest() {
        let g = from_edges(2, &[(0, 1, 5.0), (0, 1, 1.0)]);
        let spt = dijkstra(&g, NodeId(1), &g.base_weights());
        assert_eq!(spt.distance(NodeId(0)), 1.0);
        assert_eq!(spt.next_edge(NodeId(0)), Some(EdgeId(1)));
    }

    #[test]
    fn all_destinations_gives_n_trees() {
        let g = diamond();
        let trees = all_destinations(&g, &g.base_weights());
        assert_eq!(trees.len(), 4);
        for (i, t) in trees.iter().enumerate() {
            assert_eq!(t.root, NodeId(i as u32));
            assert_eq!(t.distance(t.root), 0.0);
        }
    }

    #[test]
    fn spt_distances_satisfy_triangle_property() {
        // For every tree edge (u -> parent p via e): dist[u] = dist[p] + w(e).
        let g = diamond();
        let w = g.base_weights();
        let spt = dijkstra(&g, NodeId(0), &w);
        for u in g.nodes() {
            if let Some((p, e)) = spt.parent[u.index()] {
                let expect = spt.dist[p.index()] + w[e.index()];
                assert!((spt.dist[u.index()] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn wrong_weight_length_panics() {
        let g = diamond();
        dijkstra(&g, NodeId(0), &[1.0]);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let g = diamond();
        let w = g.base_weights();
        let mut ws = SpfWorkspace::new();
        for root in g.nodes() {
            ws.run(&g, root, &w, None);
            let fresh = dijkstra(&g, root, &w);
            assert_eq!(ws.parents(), &fresh.parent[..], "root {root:?}");
            assert_eq!(ws.distances(), &fresh.dist[..], "root {root:?}");
        }
        // Masked runs through the same workspace also match.
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(1));
        ws.run(&g, NodeId(3), &w, Some(&mask));
        let fresh = dijkstra_masked(&g, NodeId(3), &w, &mask);
        assert_eq!(ws.parents(), &fresh.parent[..]);
    }

    #[test]
    fn validate_weights_accepts_good_vectors() {
        let g = diamond();
        assert_eq!(validate_weights(&g, &g.base_weights()), Ok(()));
    }

    #[test]
    fn validate_weights_rejects_bad_vectors() {
        let g = diamond();
        assert_eq!(
            validate_weights(&g, &[1.0]),
            Err(WeightError::LengthMismatch {
                expected: 4,
                got: 1
            })
        );
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let mut w = g.base_weights();
            w[2] = bad;
            match validate_weights(&g, &w) {
                Err(WeightError::BadWeight { edge, .. }) => assert_eq!(edge, EdgeId(2)),
                other => panic!("expected BadWeight for {bad}, got {other:?}"),
            }
        }
        // The error renders a human-readable message.
        let msg = validate_weights(&g, &[1.0]).unwrap_err().to_string();
        assert!(msg.contains("weight vector length"), "{msg}");
    }

    #[test]
    fn nan_distance_does_not_panic_the_heap() {
        // Even with a NaN smuggled past validation, ordering is total:
        // the walk terminates instead of panicking in the comparator.
        let g = diamond();
        let w = vec![f64::NAN, 2.0, 2.0, 2.0];
        let spt = dijkstra(&g, NodeId(3), &w);
        assert_eq!(spt.root, NodeId(3));
    }
}
