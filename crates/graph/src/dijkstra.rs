//! Dijkstra's algorithm producing destination-rooted shortest-path trees.
//!
//! Because the graph is undirected, a tree computed *from* the root equals
//! the tree of shortest paths *toward* the root, which is exactly the FIB a
//! link-state router installs for that destination. The weight vector is a
//! parameter so that each splicing slice can run the same topology under
//! its own perturbed weights.
//!
//! Ties are broken deterministically by preferring the lower-numbered
//! parent node (and then lower edge id), so that two runs over identical
//! inputs produce identical trees — a requirement for reproducible
//! Monte-Carlo experiments with common random numbers.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::mask::EdgeMask;
use crate::spt::Spt;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry: min-heap by distance, tie-broken by node id.
#[derive(Copy, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap semantics on BinaryHeap (a max-heap).
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are never NaN")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Compute the shortest-path tree rooted at `root` under `weights`.
///
/// `weights` must have one positive, finite entry per edge, indexed by
/// [`EdgeId`]. All links are considered up; see [`dijkstra_masked`] for
/// failure scenarios.
///
/// # Panics
/// Panics if `weights.len() != g.edge_count()` or a used weight is not
/// positive/finite (debug assertions).
pub fn dijkstra(g: &Graph, root: NodeId, weights: &[f64]) -> Spt {
    dijkstra_inner(g, root, weights, None)
}

/// Like [`dijkstra`], but edges failed in `mask` are skipped entirely.
pub fn dijkstra_masked(g: &Graph, root: NodeId, weights: &[f64], mask: &EdgeMask) -> Spt {
    dijkstra_inner(g, root, weights, Some(mask))
}

fn dijkstra_inner(g: &Graph, root: NodeId, weights: &[f64], mask: Option<&EdgeMask>) -> Spt {
    assert_eq!(
        weights.len(),
        g.edge_count(),
        "weight vector length must equal edge count"
    );
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);

    dist[root.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: root,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        for &(v, e) in g.neighbors(u) {
            if let Some(m) = mask {
                if m.is_failed(e) {
                    continue;
                }
            }
            if settled[v.index()] {
                continue;
            }
            let w = weights[e.index()];
            debug_assert!(w.is_finite() && w > 0.0, "bad weight {w} on {e:?}");
            let nd = d + w;
            let better = match nd.partial_cmp(&dist[v.index()]).expect("no NaN") {
                Ordering::Less => true,
                // Deterministic tie-break: prefer the lower parent node id,
                // then the lower edge id.
                Ordering::Equal => match parent[v.index()] {
                    Some((pu, pe)) => (u, e) < (pu, pe),
                    None => true,
                },
                Ordering::Greater => false,
            };
            if better {
                dist[v.index()] = nd;
                parent[v.index()] = Some((u, e));
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    Spt { root, dist, parent }
}

/// Compute one SPT per destination: `result[t.index()]` is the tree rooted
/// at `t`. This is exactly the state one routing-protocol instance (one
/// slice) installs across the network.
pub fn all_destinations(g: &Graph, weights: &[f64]) -> Vec<Spt> {
    g.nodes().map(|t| dijkstra(g, t, weights)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    /// The classic diamond: two routes 0->3, lengths 3 (via 1) and 4 (via 2).
    fn diamond() -> Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    #[test]
    fn picks_shorter_route() {
        let g = diamond();
        let spt = dijkstra(&g, NodeId(3), &g.base_weights());
        assert_eq!(spt.distance(NodeId(0)), 3.0);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(1)));
    }

    #[test]
    fn alternate_weights_change_route() {
        let g = diamond();
        // Inflate the 1-3 link: now via 2 is shorter.
        let w = vec![1.0, 10.0, 2.0, 2.0];
        let spt = dijkstra(&g, NodeId(3), &w);
        assert_eq!(spt.distance(NodeId(0)), 4.0);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(2)));
    }

    #[test]
    fn masked_edge_is_avoided() {
        let g = diamond();
        let mut mask = EdgeMask::all_up(g.edge_count());
        mask.fail(EdgeId(1)); // kill 1-3
        let spt = dijkstra_masked(&g, NodeId(3), &g.base_weights(), &mask);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(2)));
        assert_eq!(spt.distance(NodeId(0)), 4.0);
    }

    #[test]
    fn disconnection_under_mask() {
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mut mask = EdgeMask::all_up(2);
        mask.fail(EdgeId(1));
        let spt = dijkstra_masked(&g, NodeId(2), &g.base_weights(), &mask);
        assert!(!spt.reaches(NodeId(0)));
        assert!(!spt.reaches(NodeId(1)));
        assert!(spt.reaches(NodeId(2)));
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-length routes 0->1->3 and 0->2->3; parent of 3 must be
        // the lower node id (1) every time.
        let g = from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]);
        for _ in 0..10 {
            let spt = dijkstra(&g, NodeId(0), &g.base_weights());
            assert_eq!(spt.next_hop(NodeId(3)), Some(NodeId(1)));
        }
    }

    #[test]
    fn parallel_edges_use_cheapest() {
        let g = from_edges(2, &[(0, 1, 5.0), (0, 1, 1.0)]);
        let spt = dijkstra(&g, NodeId(1), &g.base_weights());
        assert_eq!(spt.distance(NodeId(0)), 1.0);
        assert_eq!(spt.next_edge(NodeId(0)), Some(EdgeId(1)));
    }

    #[test]
    fn all_destinations_gives_n_trees() {
        let g = diamond();
        let trees = all_destinations(&g, &g.base_weights());
        assert_eq!(trees.len(), 4);
        for (i, t) in trees.iter().enumerate() {
            assert_eq!(t.root, NodeId(i as u32));
            assert_eq!(t.distance(t.root), 0.0);
        }
    }

    #[test]
    fn spt_distances_satisfy_triangle_property() {
        // For every tree edge (u -> parent p via e): dist[u] = dist[p] + w(e).
        let g = diamond();
        let w = g.base_weights();
        let spt = dijkstra(&g, NodeId(0), &w);
        for u in g.nodes() {
            if let Some((p, e)) = spt.parent[u.index()] {
                let expect = spt.dist[p.index()] + w[e.index()];
                assert!((spt.dist[u.index()] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn wrong_weight_length_panics() {
        let g = diamond();
        dijkstra(&g, NodeId(0), &[1.0]);
    }
}
