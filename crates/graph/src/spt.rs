//! Shortest-path trees rooted at a destination.
//!
//! Path splicing's forwarding state is destination-rooted: slice `i`'s FIB
//! entry for destination `t` at node `u` is `u`'s parent in the slice-`i`
//! shortest-path tree rooted at `t`. An [`Spt`] therefore stores, for every
//! node, its distance to the root and the (parent node, via edge) pair on
//! its shortest path toward the root.

use crate::ids::{EdgeId, NodeId};
use crate::paths::Path;
use serde::{Deserialize, Serialize};

/// A shortest-path tree rooted at [`Spt::root`].
///
/// Produced by [`dijkstra`](crate::dijkstra()). Unreachable nodes have
/// `dist == f64::INFINITY` and no parent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Spt {
    /// The root (destination) this tree routes toward.
    pub root: NodeId,
    /// `dist[u]` = shortest distance from `u` to the root under the weight
    /// vector the tree was computed with; `INFINITY` if unreachable.
    pub dist: Vec<f64>,
    /// `parent[u]` = (next hop toward root, edge used), `None` for the root
    /// itself and for unreachable nodes.
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl Spt {
    /// The next hop from `u` toward the root, i.e. the FIB entry
    /// `Lookup(root, slice)` of the paper's Algorithm 1.
    #[inline]
    pub fn next_hop(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u.index()].map(|(n, _)| n)
    }

    /// The edge `u` uses toward the root.
    #[inline]
    pub fn next_edge(&self, u: NodeId) -> Option<EdgeId> {
        self.parent[u.index()].map(|(_, e)| e)
    }

    /// Whether `u` can reach the root in this tree.
    #[inline]
    pub fn reaches(&self, u: NodeId) -> bool {
        u == self.root || self.parent[u.index()].is_some()
    }

    /// Shortest distance from `u` to the root (`INFINITY` if unreachable).
    #[inline]
    pub fn distance(&self, u: NodeId) -> f64 {
        self.dist[u.index()]
    }

    /// Number of nodes that can reach the root (including the root).
    pub fn reachable_count(&self) -> usize {
        (0..self.dist.len())
            .filter(|&i| self.reaches(NodeId(i as u32)))
            .count()
    }

    /// Extract the full path from `u` to the root, or `None` if
    /// unreachable. The returned path starts at `u` and ends at the root.
    pub fn path_from(&self, u: NodeId) -> Option<Path> {
        if !self.reaches(u) {
            return None;
        }
        let mut nodes = vec![u];
        let mut edges = Vec::new();
        let mut cur = u;
        while cur != self.root {
            let (next, e) = self.parent[cur.index()]?;
            nodes.push(next);
            edges.push(e);
            cur = next;
            // A parent structure produced by Dijkstra is acyclic; this guard
            // turns a corrupted tree into a loud failure instead of a hang.
            assert!(
                nodes.len() <= self.dist.len(),
                "cycle in SPT parent pointers"
            );
        }
        Some(Path { nodes, edges })
    }

    /// All edges used by the tree (each appears once).
    pub fn tree_edges(&self) -> Vec<EdgeId> {
        self.parent
            .iter()
            .filter_map(|p| p.map(|(_, e)| e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::graph::from_edges;

    fn line() -> crate::Graph {
        // 0 -1- 1 -1- 2 -1- 3
        from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    }

    #[test]
    fn next_hops_point_toward_root() {
        let g = line();
        let w = g.base_weights();
        let spt = dijkstra(&g, NodeId(3), &w);
        assert_eq!(spt.next_hop(NodeId(0)), Some(NodeId(1)));
        assert_eq!(spt.next_hop(NodeId(2)), Some(NodeId(3)));
        assert_eq!(spt.next_hop(NodeId(3)), None);
    }

    #[test]
    fn path_extraction() {
        let g = line();
        let w = g.base_weights();
        let spt = dijkstra(&g, NodeId(3), &w);
        let p = spt.path_from(NodeId(0)).unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn root_path_is_trivial() {
        let g = line();
        let spt = dijkstra(&g, NodeId(3), &g.base_weights());
        let p = spt.path_from(NodeId(3)).unwrap();
        assert_eq!(p.nodes, vec![NodeId(3)]);
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn unreachable_nodes() {
        let g = from_edges(3, &[(0, 1, 1.0)]); // node 2 isolated
        let spt = dijkstra(&g, NodeId(0), &g.base_weights());
        assert!(!spt.reaches(NodeId(2)));
        assert!(spt.path_from(NodeId(2)).is_none());
        assert_eq!(spt.distance(NodeId(2)), f64::INFINITY);
        assert_eq!(spt.reachable_count(), 2);
    }

    #[test]
    fn tree_edges_form_tree() {
        let g = line();
        let spt = dijkstra(&g, NodeId(0), &g.base_weights());
        let edges = spt.tree_edges();
        assert_eq!(edges.len(), 3); // spanning tree of 4 nodes
    }
}
