//! # splice-graph
//!
//! Graph algorithms substrate for the path-splicing reproduction.
//!
//! This crate provides everything path splicing needs from graph theory,
//! implemented from scratch:
//!
//! * [`Graph`] — a weighted undirected multigraph with stable node and edge
//!   identifiers, built for repeated shortest-path computations under
//!   *externally supplied* weight vectors (so perturbed link weights never
//!   require copying the graph).
//! * [`mod@dijkstra`] — shortest-path trees ([`Spt`]) rooted at a destination,
//!   with support for masking failed edges.
//! * [`bellman_ford`] — a simple oracle used to cross-check Dijkstra in
//!   tests and to support negative-weight sanity checks.
//! * [`traversal`] — BFS/DFS reachability, connected components, and
//!   reachability under an [`EdgeMask`] of failed links.
//! * [`mincut`] — Stoer–Wagner global minimum cut (the "best possible"
//!   disconnection bound of the paper is a cut event).
//! * [`maxflow`] — Dinic's algorithm for s–t edge connectivity and counting
//!   edge-disjoint paths (used by the Theorem A.1 scaling experiments).
//! * [`unionfind`] — disjoint sets, used for fast connectivity under bulk
//!   edge failures.
//! * [`spanning`] — uniform random spanning trees (Wilson's walk) and a
//!   low-stretch SPT proxy, the substrate of the tree-based splicers.
//! * [`failover`] — greedy per-destination arc-disjoint routes, the
//!   static-failover baseline strategy.
//!
//! ## Design notes
//!
//! Node and edge identifiers are dense `u32` indices wrapped in newtypes
//! ([`NodeId`], [`EdgeId`]). All algorithms take `&[f64]` weight slices
//! indexed by `EdgeId`, because path splicing's whole premise is running
//! many routing instances over *one* topology with *different* weights.
//! Failure scenarios are expressed as an [`EdgeMask`] bitset rather than
//! graph mutation, so Monte-Carlo trials never rebuild adjacency.

pub mod bellman_ford;
pub mod dijkstra;
pub mod failover;
pub mod graph;
pub mod ids;
pub mod mask;
pub mod maxflow;
pub mod mincut;
pub mod paths;
pub mod spanning;
pub mod spt;
pub mod traversal;
pub mod unionfind;
pub mod yen;

pub use crate::graph::{Edge, Graph, GraphBuilder};
pub use dijkstra::{dijkstra, dijkstra_masked, validate_weights, SpfWorkspace, WeightError};
pub use failover::{arc_disjoint_parents, arc_diverse_parents};
pub use ids::{EdgeId, NodeId};
pub use mask::EdgeMask;
pub use paths::Path;
pub use spanning::{low_stretch_forest, random_spanning_forest, SpanningForest};
pub use spt::Spt;
pub use unionfind::UnionFind;
