//! Edge failure masks.
//!
//! A Monte-Carlo failure trial fails each link independently with
//! probability `p` (paper §4.1). Representing the failed set as a bitset
//! lets every algorithm skip failed links with one load and keeps trials
//! allocation-free after setup. The mask marks **failed** edges: a set bit
//! means the link is down.

use crate::ids::EdgeId;
use serde::{Deserialize, Serialize};

/// A bitset over edge ids marking failed links.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeMask {
    bits: Vec<u64>,
    len: usize,
}

impl EdgeMask {
    /// A mask over `len` edges with every link up.
    pub fn all_up(len: usize) -> Self {
        EdgeMask {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of edges this mask covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mask covers zero edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mark edge `e` failed.
    #[inline]
    pub fn fail(&mut self, e: EdgeId) {
        debug_assert!(e.index() < self.len);
        self.bits[e.index() / 64] |= 1 << (e.index() % 64);
    }

    /// Mark edge `e` up again.
    #[inline]
    pub fn restore(&mut self, e: EdgeId) {
        debug_assert!(e.index() < self.len);
        self.bits[e.index() / 64] &= !(1 << (e.index() % 64));
    }

    /// Whether edge `e` is failed.
    #[inline]
    pub fn is_failed(&self, e: EdgeId) -> bool {
        self.bits[e.index() / 64] >> (e.index() % 64) & 1 == 1
    }

    /// Whether edge `e` is up.
    #[inline]
    pub fn is_up(&self, e: EdgeId) -> bool {
        !self.is_failed(e)
    }

    /// Number of failed edges.
    pub fn failed_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clear all failures.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterate over failed edge ids in increasing order.
    pub fn failed_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.bits.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(EdgeId((wi * 64 + b) as u32))
                }
            })
        })
    }

    /// Build a mask from an explicit list of failed edges.
    pub fn from_failed(len: usize, failed: &[EdgeId]) -> Self {
        let mut m = Self::all_up(len);
        for &e in failed {
            m.fail(e);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_mask_is_all_up() {
        let m = EdgeMask::all_up(100);
        assert_eq!(m.len(), 100);
        assert_eq!(m.failed_count(), 0);
        assert!((0..100).all(|i| m.is_up(EdgeId(i))));
    }

    #[test]
    fn fail_and_restore() {
        let mut m = EdgeMask::all_up(70);
        m.fail(EdgeId(0));
        m.fail(EdgeId(63));
        m.fail(EdgeId(64));
        m.fail(EdgeId(69));
        assert_eq!(m.failed_count(), 4);
        assert!(m.is_failed(EdgeId(63)));
        assert!(m.is_failed(EdgeId(64)));
        m.restore(EdgeId(63));
        assert!(m.is_up(EdgeId(63)));
        assert_eq!(m.failed_count(), 3);
    }

    #[test]
    fn failed_edges_iteration_order() {
        let mut m = EdgeMask::all_up(130);
        for id in [5u32, 64, 129, 0] {
            m.fail(EdgeId(id));
        }
        let ids: Vec<u32> = m.failed_edges().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 5, 64, 129]);
    }

    #[test]
    fn from_failed_matches_manual() {
        let m = EdgeMask::from_failed(10, &[EdgeId(2), EdgeId(7)]);
        assert!(m.is_failed(EdgeId(2)));
        assert!(m.is_failed(EdgeId(7)));
        assert_eq!(m.failed_count(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut m = EdgeMask::from_failed(10, &[EdgeId(1), EdgeId(9)]);
        m.clear();
        assert_eq!(m.failed_count(), 0);
    }

    #[test]
    fn double_fail_is_idempotent() {
        let mut m = EdgeMask::all_up(8);
        m.fail(EdgeId(3));
        m.fail(EdgeId(3));
        assert_eq!(m.failed_count(), 1);
    }

    #[test]
    fn empty_mask() {
        let m = EdgeMask::all_up(0);
        assert!(m.is_empty());
        assert_eq!(m.failed_edges().count(), 0);
    }
}
