//! Property-based tests for the graph substrate.
//!
//! These pin the invariants the rest of the workspace depends on:
//! Dijkstra agrees with Bellman–Ford, SPTs are genuine trees, min-cut
//! equals max-flow, and reachability primitives are mutually consistent.

use proptest::prelude::*;
use splice_graph::bellman_ford::bellman_ford;
use splice_graph::maxflow::{edge_connectivity_st, global_edge_connectivity};
use splice_graph::mincut::min_cut_links;
use splice_graph::traversal::{components, connected, disconnected_pairs, reachable_from};
use splice_graph::{dijkstra, dijkstra_masked, EdgeId, EdgeMask, NodeId, SpfWorkspace, UnionFind};
// The random-graph strategies live in the shared testkit so every
// crate's property suite draws from the same distributions.
use splice_testkit::strategies::{
    arb_multigraph as arb_graph, arb_multigraph_with_mask as arb_graph_with_mask,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dijkstra and Bellman–Ford agree on every distance.
    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_graph()) {
        let w = g.base_weights();
        for root in g.nodes() {
            let spt = dijkstra(&g, root, &w);
            let bf = bellman_ford(&g, root, &w);
            for (i, (&a, &b)) in spt.dist.iter().zip(&bf).enumerate() {
                prop_assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "distance mismatch at node {i}: {a} vs {b}"
                );
            }
        }
    }

    /// An SPT's parent pointers form an acyclic forest rooted at the root,
    /// and every reachable node's path actually ends at the root.
    #[test]
    fn spt_is_a_tree(g in arb_graph()) {
        let w = g.base_weights();
        let root = NodeId(0);
        let spt = dijkstra(&g, root, &w);
        for u in g.nodes() {
            if spt.reaches(u) {
                let p = spt.path_from(u).expect("reachable node has a path");
                prop_assert_eq!(p.source(), u);
                prop_assert_eq!(p.destination(), root);
                prop_assert!(p.validate(&g));
                prop_assert!(p.is_simple(), "SPT paths are simple");
                prop_assert!((p.base_length(&g) - spt.distance(u)).abs() < 1e-9);
            }
        }
    }

    /// Distances can only grow when edges fail.
    #[test]
    fn failures_never_shorten_paths((g, mask) in arb_graph_with_mask()) {
        let w = g.base_weights();
        let root = NodeId(0);
        let free = dijkstra(&g, root, &w);
        let failed = dijkstra_masked(&g, root, &w, &mask);
        for i in 0..g.node_count() {
            prop_assert!(failed.dist[i] >= free.dist[i] - 1e-12);
        }
    }

    /// Stoer–Wagner equals global edge connectivity by max-flow.
    #[test]
    fn mincut_equals_maxflow(g in arb_graph()) {
        prop_assert_eq!(min_cut_links(&g).unwrap(), global_edge_connectivity(&g));
    }

    /// s–t edge connectivity is symmetric in an undirected graph.
    #[test]
    fn st_connectivity_symmetric(g in arb_graph()) {
        let s = NodeId(0);
        let t = NodeId((g.node_count() - 1) as u32);
        if s != t {
            prop_assert_eq!(
                edge_connectivity_st(&g, s, t),
                edge_connectivity_st(&g, t, s)
            );
        }
    }

    /// BFS reachability agrees with union-find components under any mask.
    #[test]
    fn bfs_matches_union_find((g, mask) in arb_graph_with_mask()) {
        let mut uf = UnionFind::new(g.node_count());
        for e in g.edge_ids() {
            if mask.is_up(e) {
                let edge = g.edge(e);
                uf.union(edge.u.index(), edge.v.index());
            }
        }
        let from0 = reachable_from(&g, NodeId(0), &mask);
        for (i, &reach) in from0.iter().enumerate() {
            prop_assert_eq!(reach, uf.same(0, i));
        }
    }

    /// disconnected_pairs is consistent with pairwise connectivity checks.
    #[test]
    fn disconnected_pairs_consistent((g, mask) in arb_graph_with_mask()) {
        let n = g.node_count();
        let mut brute = 0usize;
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                if s != t && !connected(&g, NodeId(s), NodeId(t), &mask) {
                    brute += 1;
                }
            }
        }
        prop_assert_eq!(disconnected_pairs(&g, &mask), brute);
    }

    /// Delta-SPF repair after failing a random edge subset is bit-identical
    /// — distances by `total_cmp`, parents exactly — to a from-scratch
    /// masked run, for every root.
    #[test]
    fn repair_failures_matches_rebuild((g, mask) in arb_graph_with_mask()) {
        let w = g.base_weights();
        let newly: Vec<EdgeId> = mask.failed_edges().collect();
        let mut ws = SpfWorkspace::new();
        let mut fresh = SpfWorkspace::new();
        for root in g.nodes() {
            ws.run(&g, root, &w, None);
            ws.repair_failures(&g, root, &w, &mask, &newly);
            fresh.run(&g, root, &w, Some(&mask));
            for i in 0..g.node_count() {
                prop_assert!(
                    ws.distances()[i].total_cmp(&fresh.distances()[i]).is_eq(),
                    "dist mismatch at node {} of root {:?}: {} vs {}",
                    i, root, ws.distances()[i], fresh.distances()[i]
                );
                prop_assert_eq!(
                    ws.parents()[i], fresh.parents()[i],
                    "parent mismatch at node {} of root {:?}", i, root
                );
            }
        }
    }

    /// Delta-SPF repair of a single weight change (up or down) is
    /// bit-identical to a from-scratch run on the new vector.
    #[test]
    fn repair_reweight_matches_rebuild(
        g in arb_graph(),
        edge_sel in any::<prop::sample::Index>(),
        factor in prop_oneof![0.1f64..0.9, 1.0f64..8.0],
    ) {
        let old_w = g.base_weights();
        let e = EdgeId(edge_sel.index(g.edge_count()) as u32);
        let mut new_w = old_w.clone();
        new_w[e.index()] = old_w[e.index()] * factor;
        let mask = EdgeMask::all_up(g.edge_count());
        let mut ws = SpfWorkspace::new();
        let mut fresh = SpfWorkspace::new();
        for root in g.nodes() {
            ws.run(&g, root, &old_w, Some(&mask));
            ws.repair_reweight(&g, root, &new_w, &mask, e, old_w[e.index()]);
            fresh.run(&g, root, &new_w, Some(&mask));
            for i in 0..g.node_count() {
                prop_assert!(
                    ws.distances()[i].total_cmp(&fresh.distances()[i]).is_eq(),
                    "dist mismatch at node {} of root {:?} (factor {})",
                    i, root, factor
                );
                prop_assert_eq!(
                    ws.parents()[i], fresh.parents()[i],
                    "parent mismatch at node {} of root {:?} (factor {})", i, root, factor
                );
            }
        }
    }

    /// Component labels partition the node set.
    #[test]
    fn components_partition((g, mask) in arb_graph_with_mask()) {
        let comp = components(&g, &mask);
        prop_assert_eq!(comp.len(), g.node_count());
        // Every edge that is up connects same-component nodes.
        for e in g.edge_ids() {
            if mask.is_up(e) {
                let edge = g.edge(e);
                prop_assert_eq!(comp[edge.u.index()], comp[edge.v.index()]);
            }
        }
    }
}
